package experiments

import (
	"fmt"

	"agsim/internal/firmware"
	"agsim/internal/parallel"
	"agsim/internal/server"
	"agsim/internal/stress"
	"agsim/internal/trace"
	"agsim/internal/workload"
)

// This file holds ablation studies for the design choices DESIGN.md calls
// out: each sweeps one model parameter and reports how the reproduction's
// headline behaviours respond. They are not paper figures; they justify
// the calibration and expose the sensitivity of the conclusions.

// AblationLoadReserveResult sweeps the firmware's current-proportional
// transient reserve — the constant that produces the paper's Fig. 10b law
// (undervolt falls ~1 mV per mV of passive drop).
type AblationLoadReserveResult struct {
	// Table columns: reserve mΩ, 1-core saving %, 8-core saving %,
	// loadline-borrowing improvement % at 8 cores.
	Table *trace.Table
}

// AblationLoadReserve runs the reserve sweep.
func AblationLoadReserve(o Options) AblationLoadReserveResult {
	res := AblationLoadReserveResult{
		Table: trace.NewTable("Ablation: firmware load reserve (mΩ)",
			"saving@1core %", "saving@8core %", "LLB imp@8 %"),
	}
	reserves := []float64{0, 0.5, 1.08, 1.6}
	if o.Quick {
		// Keep the endpoints that bracket the behaviour: no reserve, the
		// tuned value, and an over-reserve that exhausts the undervolt
		// budget at 8-core current (130 mV authority - 1.6 mΩ * ~105 A < 0).
		reserves = []float64{0, 1.08, 1.6}
	}
	const bench = "raytrace"
	d := workload.MustGet(bench)
	type row struct{ s1, s8, llb float64 }
	rows := parallel.Sweep(o.pool(), reserves, func(_ int, k float64) row {
		saving := func(n int) float64 {
			static := measureWithReserve(o, bench, n, firmware.Static, k)
			uv := measureWithReserve(o, bench, n, firmware.Undervolt, k)
			return improvementPct(static, uv)
		}
		llb := func() float64 {
			plC, keepC := fig12Schedule(8, false)
			plB, keepB := fig12Schedule(8, true)
			cons := serverSteadyWithReserve(o, fmt.Sprintf("abl/cons/%.2f", k), d, plC, keepC, k)
			borr := serverSteadyWithReserve(o, fmt.Sprintf("abl/borr/%.2f", k), d, plB, keepB, k)
			return improvementPct(cons, borr)
		}
		return row{s1: saving(1), s8: saving(8), llb: llb()}
	})
	for i, k := range reserves {
		res.Table.AddRow(fmt.Sprintf("k=%.2f", k), rows[i].s1, rows[i].s8, rows[i].llb)
	}
	return res
}

func measureWithReserve(o Options, name string, n int, mode firmware.Mode, reserve float64) float64 {
	tag := fmt.Sprintf("abl-reserve/%s/%d/%v/%.2f", name, n, mode, reserve)
	c := newChip(o, tag)
	c.Controller().LoadReserveMilliohm = reserve
	placeThreads(c, workload.MustGet(name), n)
	c.SetMode(mode)
	p := measureChip(o, c, tag).PowerW
	releaseChip(c)
	return p
}

func serverSteadyWithReserve(o Options, tag string, d workload.Descriptor, pl []server.Placement, keepOn []int, reserve float64) float64 {
	cfg := o.serverConfig(o.Seed ^ hash(tag))
	cfg.Recorder = o.Recorder.Shard("server/" + tag)
	s := acquireServer(cfg)
	for si := 0; si < s.Sockets(); si++ {
		s.Chip(si).Controller().LoadReserveMilliohm = reserve
	}
	s.MustSubmit("j", d, pl, 1e9)
	s.GateUnloadedCores(keepOn...)
	s.SetMode(firmware.Undervolt)
	o.settleServer(s, "abl-srv/"+tag)
	var power float64
	k := serverMeasureSpan(s, o.MeasureSec, func(dt float64) {
		power += float64(s.TotalPower()) * dt
	})
	releaseServer(s)
	return power / k
}

// AblationDPLLAuthorityResult sweeps the DPLL's fast-slew droop authority:
// without the 7%-in-10ns reaction the undervolted chip cannot survive
// worst-case di/dt, which is the paper's core safety argument for adaptive
// guardbanding.
type AblationDPLLAuthorityResult struct {
	// Table columns: authority fraction, droops absorbed, timing
	// violations under the virus stressmark in undervolt mode.
	Table *trace.Table
	// ViolationsWithoutSlew and ViolationsWithSlew bracket the effect.
	ViolationsWithoutSlew, ViolationsWithSlew int
}

// AblationDPLLAuthority runs the authority sweep.
func AblationDPLLAuthority(o Options) AblationDPLLAuthorityResult {
	res := AblationDPLLAuthorityResult{
		Table: trace.NewTable("Ablation: DPLL fast-slew authority under virus stress",
			"absorbed", "violations"),
	}
	authorities := []float64{0.005, 0.035, 0.07}
	seconds := 8.0
	if o.Quick {
		authorities = []float64{0.005, 0.07}
		seconds = 3
	}
	type droopRow struct{ absorbed, violations int }
	rows := parallel.Sweep(o.pool(), authorities, func(_ int, a float64) droopRow {
		cfg := o.chipConfig("abl-dpll", o.Seed)
		cfg.Recorder = o.Recorder.Shard(fmt.Sprintf("chip/abl-dpll/%g", a))
		c := acquireChip(cfg)
		c.SetDroopSlewAuthority(a)
		d := stress.Synthesize(stress.Virus)
		for i := 0; i < c.Cores(); i++ {
			c.Place(i, workload.NewThread(d, 1e9, nil))
		}
		c.SetMode(firmware.Undervolt)
		c.Settle(2)
		c.ResetDroopStats()
		// The droop census rides the multi-rate path: worst-case events
		// come from the time-indexed schedule, so the counts match the
		// 1 ms reference exactly.
		for remaining := seconds; remaining > settleEps; {
			remaining -= c.Advance(remaining)
		}
		absorbed, violations := c.DroopStats()
		releaseChip(c)
		return droopRow{absorbed: absorbed, violations: violations}
	})
	for i, a := range authorities {
		res.Table.AddRow(fmt.Sprintf("slew=%.3f", a), float64(rows[i].absorbed), float64(rows[i].violations))
		switch a {
		case authorities[0]:
			res.ViolationsWithoutSlew = rows[i].violations
		case 0.07:
			res.ViolationsWithSlew = rows[i].violations
		}
	}
	return res
}

// AblationCPMVariationResult sweeps the per-sensor process-variation
// spread: the worst of 40 calibration-offset sensors is what the firmware
// follows, so more spread costs undervolt depth.
type AblationCPMVariationResult struct {
	// Table columns: offset spread mV, mean undervolt mV at 4 active
	// cores.
	Table *trace.Table
	// UndervoltTight and UndervoltWide bracket the effect.
	UndervoltTight, UndervoltWide float64
}

// AblationCPMVariation runs the spread sweep.
func AblationCPMVariation(o Options) AblationCPMVariationResult {
	res := AblationCPMVariationResult{
		Table: trace.NewTable("Ablation: CPM calibration-offset spread", "undervolt mV"),
	}
	spreads := []float64{0, 4, 10}
	if o.Quick {
		spreads = []float64{0, 10}
	}
	uvs := parallel.Sweep(o.pool(), spreads, func(_ int, sp float64) float64 {
		tag := fmt.Sprintf("abl-cpm/%g", sp)
		cfg := o.chipConfig("abl-cpm", o.Seed)
		cfg.CPM.PathOffsetSpreadMV = sp
		cfg.Recorder = o.Recorder.Shard("chip/" + tag)
		c := acquireChip(cfg)
		placeThreads(c, workload.MustGet("raytrace"), 4)
		c.SetMode(firmware.Undervolt)
		uv := measureChip(o, c, tag).UndervoltMV
		releaseChip(c)
		return uv
	})
	for i, sp := range spreads {
		res.Table.AddRow(fmt.Sprintf("spread=%.0fmV", sp), uvs[i])
		switch sp {
		case 0:
			res.UndervoltTight = uvs[i]
		case 10:
			res.UndervoltWide = uvs[i]
		}
	}
	return res
}

// AblationContentionResult sweeps the memory-contention exponent that
// calibrates Fig. 14's bandwidth-relief winners.
type AblationContentionResult struct {
	// Table columns: exponent, radix split speedup.
	Table *trace.Table
}

// AblationContention runs the exponent sweep.
func AblationContention(o Options) AblationContentionResult {
	res := AblationContentionResult{
		Table: trace.NewTable("Ablation: memory contention exponent", "radix split speedup x"),
	}
	exponents := []float64{1.0, 1.4, 1.8}
	if o.Quick {
		exponents = []float64{1.0, 1.4}
	}
	d := workload.MustGet("radix")
	speedups := parallel.Sweep(o.pool(), exponents, func(_ int, exp float64) float64 {
		runOne := func(split string, pl []server.Placement) float64 {
			cfg := o.serverConfig(o.Seed)
			cfg.ContentionExponent = exp
			cfg.Recorder = o.Recorder.Shard(fmt.Sprintf("server/abl-contention/%g/%s", exp, split))
			s := acquireServer(cfg)
			s.MustSubmit("j", d, pl, d.WorkGInst*o.WorkScale)
			s.SetMode(firmware.Static)
			elapsed, done := s.RunUntilDone(3600)
			if !done {
				panic("ablation: radix did not finish")
			}
			releaseServer(s)
			return stepQuantize(elapsed)
		}
		return runOne("consolidated", server.ConsolidatedPlacements(8)) / runOne("borrowed", server.BorrowedPlacements(8, 2))
	})
	for i, exp := range exponents {
		res.Table.AddRow(fmt.Sprintf("exp=%.1f", exp), speedups[i])
	}
	return res
}
