package experiments

import (
	"fmt"

	"agsim/internal/firmware"
	"agsim/internal/parallel"
	"agsim/internal/trace"
	"agsim/internal/workload"
)

// Fig15Result reproduces Fig. 15: the frequency a critical coremark thread
// gets as other workloads are colocated on the remaining cores, in
// frequency-boosting mode.
type Fig15Result struct {
	// Frequency: series "lu_cb" and "mcf", core-0 (coremark) frequency vs
	// the number of coremark threads in the mix (the rest of the eight
	// cores run the other workload). x=8 is the coremark-only chip.
	Frequency *trace.Figure

	// CoremarkOnly is the all-coremark frequency (paper: ~4517 MHz).
	CoremarkOnly float64
	// WorstWithLuCb is the frequency with one coremark and seven lu_cb
	// threads (paper: drops to ~4433 MHz).
	WorstWithLuCb float64
	// BestWithMcf is the frequency with one coremark and seven mcf
	// threads (paper: mcf colocation raises frequency).
	BestWithMcf float64
	// SwingMHz is the spread between the lu_cb and mcf extremes (paper:
	// >100 MHz).
	SwingMHz float64
}

// Fig15Colocation runs the Fig. 15 experiment.
func Fig15Colocation(o Options) Fig15Result {
	res := Fig15Result{
		Frequency: trace.NewFigure("Fig. 15: coremark frequency vs colocation mix"),
	}
	cm := workload.MustGet("coremark")

	counts := []int{1, 2, 3, 4, 5, 6, 7, 8}
	if o.Quick {
		counts = []int{1, 4, 8}
	}
	type gridPoint struct {
		otherName string
		k         int
	}
	var points []gridPoint
	for _, otherName := range []string{"lu_cb", "mcf"} {
		for _, k := range counts {
			points = append(points, gridPoint{otherName, k})
		}
	}
	freqs := parallel.Sweep(o.pool(), points, func(_ int, pt gridPoint) float64 {
		other := workload.MustGet(pt.otherName)
		tag := fmt.Sprintf("fig15/%s/%d", pt.otherName, pt.k)
		c := newChip(o, tag)
		for i := 0; i < pt.k; i++ {
			c.Place(i, workload.NewThread(cm, 1e9, nil))
		}
		for i := pt.k; i < 8; i++ {
			c.Place(i, workload.NewThread(other, 1e9, nil))
		}
		c.SetMode(firmware.Overclock)
		f := measureChip(o, c, tag).Freq0MHz
		releaseChip(c)
		return f
	})

	idx := 0
	for _, otherName := range []string{"lu_cb", "mcf"} {
		s := res.Frequency.NewSeries(otherName, "#coremark", "MHz")
		for _, k := range counts {
			f := freqs[idx]
			idx++
			s.Add(float64(k), f)

			switch {
			case k == 8 && otherName == "lu_cb":
				res.CoremarkOnly = f
			case k == 1 && otherName == "lu_cb":
				res.WorstWithLuCb = f
			case k == 1 && otherName == "mcf":
				res.BestWithMcf = f
			}
		}
	}
	res.SwingMHz = res.BestWithMcf - res.WorstWithLuCb
	return res
}
