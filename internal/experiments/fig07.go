package experiments

import (
	"fmt"

	"agsim/internal/firmware"
	"agsim/internal/parallel"
	"agsim/internal/trace"
	"agsim/internal/workload"
)

// Fig07Result reproduces Fig. 7: per-core on-chip voltage drop as cores are
// activated in succession, for each labelled workload. Measurements are
// taken with adaptive guardbanding disabled (static mode at nominal), the
// methodology of paper §4.1.
type Fig07Result struct {
	// PerCore[i] is core i's figure: one series per workload, drop percent
	// of nominal vs active core count.
	PerCore []*trace.Figure

	// Core0DropAt1, Core0DropAt8: core 0's drop at one and eight active
	// cores (paper: rising from ~2% to ~8% across the sweep).
	Core0DropAt1, Core0DropAt8 float64
	// IdleCoreDropAt4 is core 7's drop while only cores 0-3 are active —
	// nonzero because drop is partly a chip-global effect.
	IdleCoreDropAt4 float64
	// ActivationJumpPct is how much core 7's drop rises between 7 and 8
	// active cores (paper: ~2% localized jump when the core activates).
	ActivationJumpPct float64
}

// Fig07VoltageDrop runs the Fig. 7 experiment. Like Fig09Decomposition it
// stays on the detailed lane under Options.Sampled: per-core drop includes
// the di/dt component a fast-forward freezes, and extrapolating one droop
// draw over a long span biases the time-weighted means.
func Fig07VoltageDrop(o Options) Fig07Result {
	o.Sampled = false
	cores := 8
	res := Fig07Result{PerCore: make([]*trace.Figure, cores)}
	for i := range res.PerCore {
		res.PerCore[i] = trace.NewFigure(fmt.Sprintf("Fig. 7: core %d voltage drop vs active cores", i))
	}

	workloads := workload.Fig5Workloads()
	if o.Quick {
		workloads = workloads[:2]
	}
	nom := float64(nomV())

	type gridPoint struct {
		d workload.Descriptor
		n int
	}
	var points []gridPoint
	for _, d := range workloads {
		for _, n := range o.coreCounts() {
			points = append(points, gridPoint{d, n})
		}
	}
	dropPcts := parallel.Sweep(o.pool(), points, func(_ int, pt gridPoint) []float64 {
		tag := fmt.Sprintf("fig07/%s/%d", pt.d.Name, pt.n)
		c := newChip(o, tag)
		placeThreads(c, pt.d, pt.n)
		c.SetMode(firmware.Static)
		o.settleChip(c, tag)
		drops := make([]float64, cores)
		span := o.measureSpan(c, o.MeasureSec, func(dt float64) {
			for i := 0; i < cores; i++ {
				drops[i] += c.TotalDropMV(i) * dt
			}
		})
		for i := range drops {
			drops[i] = drops[i] / span / nom * 100
		}
		releaseChip(c)
		return drops
	})

	k := 0
	for _, d := range workloads {
		series := make([]*trace.Series, cores)
		for i := range series {
			series[i] = res.PerCore[i].NewSeries(d.Name, "active cores", "% drop")
		}
		for _, n := range o.coreCounts() {
			for i := 0; i < cores; i++ {
				series[i].Add(float64(n), dropPcts[k][i])
			}
			k++
		}
	}

	// Headline statistics from the raytrace lines.
	if s := res.PerCore[0].Lookup("raytrace"); s != nil {
		res.Core0DropAt1, _ = s.YAt(1)
		res.Core0DropAt8, _ = s.YAt(8)
	}
	if s := res.PerCore[7].Lookup("raytrace"); s != nil {
		res.IdleCoreDropAt4, _ = s.YAt(4)
		// Activation jump: core 7's drop increase from the last point
		// before it activates to the point where it runs.
		if at8, ok := s.YAt(8); ok && len(s.Points) >= 2 {
			res.ActivationJumpPct = at8 - s.Points[len(s.Points)-2].Y
		}
	}
	return res
}
