package experiments

import "testing"

func TestDatacenterSweep(t *testing.T) {
	r := DatacenterSweep(QuickOptions())
	if r.SavingAtHalfLoad < 10 {
		t.Errorf("AGS saving over naive = %.1f%%, want substantial (suspended nodes + borrowing)", r.SavingAtHalfLoad)
	}
	if !r.AGSBeatsConsolidateEverywhere {
		t.Error("full AGS policy lost to consolidate-only somewhere in the sweep")
	}
	for _, name := range []string{"naive", "consolidate", "ags"} {
		s := r.Power.Lookup(name)
		if s == nil || len(s.Points) == 0 {
			t.Fatalf("missing power series %q", name)
		}
		// Power must grow with offered load under every policy.
		if s.Points[len(s.Points)-1].Y <= s.Points[0].Y {
			t.Errorf("%s power did not grow with load", name)
		}
		if e := r.Efficiency.Lookup(name); e == nil || len(e.Points) == 0 {
			t.Fatalf("missing efficiency series %q", name)
		}
	}
	// The headline: at every measured load, AGS draws less than naive.
	naive, ags := r.Power.Lookup("naive"), r.Power.Lookup("ags")
	for _, p := range ags.Points {
		n, ok := naive.YAt(p.X)
		if !ok {
			continue
		}
		if p.Y >= n {
			t.Errorf("AGS (%.1f W) not below naive (%.1f W) at %v jobs", p.Y, n, p.X)
		}
	}
}
