// Distributed sweep units: one unit is one registered experiment, the
// granularity internal/sweepd leases to worker processes. Every experiment
// is a deterministic function of its Options, and RenderUnit's output is
// plain formatted text, so a render is byte-identical wherever it ran —
// the property that makes the coordinator's in-order merge equal a serial
// run (pinned by the sweepd tests and the `make ci` two-worker smoke).
package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
)

// WireOptions is the JSON wire form of Options carried in a sweep lease:
// the deterministic knobs only — no recorder (a distributed run has no
// shared recorder tree) and no in-process sinks.
type WireOptions struct {
	Seed       uint64  `json:"seed"`
	SettleSec  float64 `json:"settle_sec"`
	MeasureSec float64 `json:"measure_sec"`
	WorkScale  float64 `json:"work_scale"`
	Quick      bool    `json:"quick"`
	Workers    int     `json:"workers"`
	Mesh       bool    `json:"mesh"`
	Exact      bool    `json:"exact"`
	Batched    bool    `json:"batched"`
	Nodes      int     `json:"nodes"`
	Sampled    bool    `json:"sampled"`
	TargetCI   float64 `json:"target_ci"`
	WarmStart  bool    `json:"warm_start"`
}

// Wire extracts the deterministic knobs for a sweep lease.
func (o Options) Wire() WireOptions {
	return WireOptions{
		Seed: o.Seed, SettleSec: o.SettleSec, MeasureSec: o.MeasureSec,
		WorkScale: o.WorkScale, Quick: o.Quick, Workers: o.Workers,
		Mesh: o.Mesh, Exact: o.Exact, Batched: o.Batched, Nodes: o.Nodes,
		Sampled: o.Sampled, TargetCI: o.TargetCI, WarmStart: o.WarmStart,
	}
}

// Options rehydrates the wire form.
func (w WireOptions) Options() Options {
	return Options{
		Seed: w.Seed, SettleSec: w.SettleSec, MeasureSec: w.MeasureSec,
		WorkScale: w.WorkScale, Quick: w.Quick, Workers: w.Workers,
		Mesh: w.Mesh, Exact: w.Exact, Batched: w.Batched, Nodes: w.Nodes,
		Sampled: w.Sampled, TargetCI: w.TargetCI, WarmStart: w.WarmStart,
	}
}

// UnitIDs returns every registered experiment id in registry (merge)
// order.
func UnitIDs() []string {
	reg := Registry()
	ids := make([]string, len(reg))
	for i, e := range reg {
		ids[i] = e.ID
	}
	return ids
}

// RenderUnit runs one registered experiment and renders its report as
// deterministic text: the unit of work a sweep worker returns and the
// serial reference produces. opts is the lease's WireOptions JSON.
func RenderUnit(id string, opts json.RawMessage) (string, error) {
	var w WireOptions
	if err := json.Unmarshal(opts, &w); err != nil {
		return "", fmt.Errorf("experiments: unit %s: bad options: %w", id, err)
	}
	e, ok := Lookup(id)
	if !ok {
		return "", fmt.Errorf("experiments: unknown unit %q", id)
	}
	rep := e.Run(w.Options())
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s — %s\n", e.ID, e.Title)
	if err := rep.Write(&sb, true); err != nil {
		return "", fmt.Errorf("experiments: unit %s: render: %w", id, err)
	}
	sb.WriteString("\n")
	return sb.String(), nil
}
