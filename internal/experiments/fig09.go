package experiments

import (
	"fmt"

	"agsim/internal/chip"
	"agsim/internal/firmware"
	"agsim/internal/parallel"
	"agsim/internal/trace"
	"agsim/internal/workload"
)

// Fig09Result reproduces Fig. 9: decomposition of core 0's voltage drop
// into loadline, IR drop, typical-case di/dt and worst-case di/dt, versus
// active core count, for the paper's ten selected benchmarks.
type Fig09Result struct {
	// PerWorkload[name] holds four series ("loadline", "ir", "didt-typ",
	// "didt-worst"), each in percent of nominal vs active cores; stacked
	// they give the paper's area chart.
	PerWorkload map[string]*trace.Figure

	// PassiveShareAt8 is the fraction of the total decomposed drop that
	// loadline + IR contribute at eight cores for raytrace (the paper's
	// conclusion: passive drop dominates the scale-up).
	PassiveShareAt8 float64
	// TypTrend is typical-case di/dt at 8 cores minus at 1 core for
	// raytrace (negative: smoothing).
	TypTrend float64
	// WorstTrend is worst-case di/dt at 8 cores minus at 1 core for
	// raytrace (positive: alignment growth).
	WorstTrend float64
}

// Fig09Decomposition runs the Fig. 9 experiment. Measurement uses static
// mode (adaptive guardbanding disabled) like the paper's characterization.
// The driver stays on the detailed lane even under Options.Sampled: it
// time-averages the di/dt drop decomposition, the one telemetry a
// fast-forward freezes, so extrapolating a single droop draw would bias
// the means outside the stated confidence interval.
func Fig09Decomposition(o Options) Fig09Result {
	o.Sampled = false
	res := Fig09Result{PerWorkload: map[string]*trace.Figure{}}
	workloads := workload.Fig9Workloads()
	if o.Quick {
		workloads = []workload.Descriptor{workload.MustGet("raytrace"), workload.MustGet("bodytrack")}
	}
	nom := float64(nomV())

	type gridPoint struct {
		name string
		n    int
	}
	var points []gridPoint
	for _, d := range workloads {
		for _, n := range o.coreCounts() {
			points = append(points, gridPoint{d.Name, n})
		}
	}
	breakdowns := parallel.Sweep(o.pool(), points, func(_ int, pt gridPoint) chip.DropBreakdown {
		return chipSteady(o, pt.name, pt.n, firmware.Static).Breakdown0
	})

	k := 0
	for _, d := range workloads {
		fig := trace.NewFigure(fmt.Sprintf("Fig. 9: %s drop decomposition", d.Name))
		res.PerWorkload[d.Name] = fig
		ll := fig.NewSeries("loadline", "cores", "%")
		ir := fig.NewSeries("ir", "cores", "%")
		typ := fig.NewSeries("didt-typ", "cores", "%")
		worst := fig.NewSeries("didt-worst", "cores", "%")
		for _, n := range o.coreCounts() {
			b := breakdowns[k]
			k++
			ll.Add(float64(n), b.LoadlineMV/nom*100)
			ir.Add(float64(n), b.IRDropMV/nom*100)
			typ.Add(float64(n), b.TypicalDidtMV/nom*100)
			worst.Add(float64(n), b.WorstDidtMV/nom*100)
		}
	}

	if fig := res.PerWorkload["raytrace"]; fig != nil {
		at := func(name string, n float64) float64 {
			y, _ := fig.Lookup(name).YAt(n)
			return y
		}
		passive := at("loadline", 8) + at("ir", 8)
		total := passive + at("didt-typ", 8) + at("didt-worst", 8)
		if total > 0 {
			res.PassiveShareAt8 = passive / total
		}
		res.TypTrend = at("didt-typ", 8) - at("didt-typ", 1)
		res.WorstTrend = at("didt-worst", 8) - at("didt-worst", 1)
	}
	return res
}
