package experiments

import (
	"fmt"

	"agsim/internal/firmware"
	"agsim/internal/parallel"
	"agsim/internal/trace"
	"agsim/internal/workload"
)

// SMTResult examines the 4-way simultaneous multithreading dimension the
// paper's Fig. 14 setup exercises ("we use 32 PARSEC and SPLASH-2 threads
// ... to match POWER7+'s eight-core architecture"): how does filling the
// SMT slots change throughput, power, and the guardband economics?
type SMTResult struct {
	// Table rows per thread count {8, 16, 32}: chip MIPS, chip watts,
	// undervolt mV, and MIPS per watt.
	Table *trace.Table

	// ThroughputGainSMT4 is total-MIPS gain of 32 threads over 8 (the
	// SMT yield; sub-linear by construction).
	ThroughputGainSMT4 float64
	// EfficiencyGainSMT4 is the MIPS/W gain of 32 threads over 8: SMT
	// amortizes the chip's fixed power over more work.
	EfficiencyGainSMT4 float64
	// UndervoltCostSMT4 is how much undervolt depth SMT4 costs (mV):
	// busier pipelines draw more current.
	UndervoltCostSMT4 float64
}

// SMTScaling runs the SMT sweep with raytrace in undervolting mode.
func SMTScaling(o Options) SMTResult {
	res := SMTResult{
		Table: trace.NewTable("Extension: SMT scaling (raytrace, undervolt mode)",
			"MIPS", "W", "undervolt mV", "MIPS/W"),
	}
	d := workload.MustGet("raytrace")
	counts := []int{8, 16, 32}
	if o.Quick {
		counts = []int{8, 32}
	}
	sts := parallel.Sweep(o.pool(), counts, func(_ int, threads int) steady {
		tag := fmt.Sprintf("smt/%d", threads)
		c := newChip(o, tag)
		perCore := threads / 8
		for core := 0; core < 8; core++ {
			for k := 0; k < perCore; k++ {
				c.Place(core, workload.NewThread(d, 1e9, nil))
			}
		}
		c.SetMode(firmware.Undervolt)
		st := measureChip(o, c, tag)
		releaseChip(c)
		return st
	})
	byCount := map[int]steady{}
	for i, threads := range counts {
		st := sts[i]
		byCount[threads] = st
		res.Table.AddRow(fmt.Sprintf("%d threads", threads),
			st.TotalMIPS, st.PowerW, st.UndervoltMV, st.TotalMIPS/st.PowerW)
	}
	base, smt4 := byCount[8], byCount[32]
	if base.TotalMIPS > 0 && base.PowerW > 0 {
		res.ThroughputGainSMT4 = (smt4.TotalMIPS/base.TotalMIPS - 1) * 100
		res.EfficiencyGainSMT4 = ((smt4.TotalMIPS/smt4.PowerW)/(base.TotalMIPS/base.PowerW) - 1) * 100
	}
	res.UndervoltCostSMT4 = base.UndervoltMV - smt4.UndervoltMV
	return res
}
