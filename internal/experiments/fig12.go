package experiments

import (
	"fmt"

	"agsim/internal/firmware"
	"agsim/internal/parallel"
	"agsim/internal/server"
	"agsim/internal/trace"
	"agsim/internal/workload"
)

// Fig12Result reproduces Fig. 12: raytrace on the two-socket server under
// the consolidation baseline versus loadline borrowing, sweeping active
// core count with eight of sixteen cores kept powered.
type Fig12Result struct {
	// Undervolt: series "baseline" and "borrowing", loaded-socket
	// undervolt millivolts vs active cores (Fig. 12a).
	Undervolt *trace.Figure
	// Power: series "static", "baseline", "borrowing", total chip watts
	// vs active cores (Fig. 12b).
	Power *trace.Figure

	// ExtraUndervoltAt1 is borrowing's undervolt advantage at one core
	// (paper: ~20 mV from reduced idle power).
	ExtraUndervoltAt1 float64
	// ExtraUndervoltAt8 is the advantage at eight cores (paper: ~20 mV
	// more from distributed dynamic power, ~40 mV total).
	ExtraUndervoltAt8 float64
	// ImprovementAt2, At4, At8: borrowing's power reduction over the
	// baseline (paper: 1.6%, 4.2%, 8.5%).
	ImprovementAt2, ImprovementAt4, ImprovementAt8 float64
}

// fig12Schedule returns placements and keep-on counts for the paper's
// scenario: eight cores powered in total; the baseline packs them all on
// socket 0, borrowing keeps four per socket.
func fig12Schedule(n int, borrowed bool) (pl []server.Placement, keepOn []int) {
	if borrowed {
		pl = server.BorrowedPlacements(n, 2)
		on0 := 4 - (n+1)/2
		on1 := 4 - n/2
		if on0 < 0 {
			on0 = 0
		}
		if on1 < 0 {
			on1 = 0
		}
		return pl, []int{on0, on1}
	}
	pl = server.ConsolidatedPlacements(n)
	keep := 8 - n
	if keep < 0 {
		keep = 0
	}
	return pl, []int{keep, 0}
}

// Fig12LoadlineBorrowing runs the Fig. 12 experiment.
func Fig12LoadlineBorrowing(o Options) Fig12Result {
	const bench = "raytrace"
	res := Fig12Result{
		Undervolt: trace.NewFigure("Fig. 12a: undervolt vs active cores"),
		Power:     trace.NewFigure("Fig. 12b: total chip power vs active cores"),
	}
	uvBase := res.Undervolt.NewSeries("baseline", "cores", "mV")
	uvBorrow := res.Undervolt.NewSeries("borrowing", "cores", "mV")
	pStatic := res.Power.NewSeries("static", "cores", "W")
	pBase := res.Power.NewSeries("baseline", "cores", "W")
	pBorrow := res.Power.NewSeries("borrowing", "cores", "W")

	d := workload.MustGet(bench)
	type point struct {
		staticP, baseP, borrP float64
		baseUV, borrUV        []float64
	}
	pts := parallel.Sweep(o.pool(), o.coreCounts(), func(_ int, n int) point {
		plC, keepC := fig12Schedule(n, false)
		plB, keepB := fig12Schedule(n, true)
		var pt point
		pt.staticP, _ = serverSteady(o, fmt.Sprintf("fig12/st/%d", n), d, plC, keepC, firmware.Static)
		pt.baseP, pt.baseUV = serverSteady(o, fmt.Sprintf("fig12/base/%d", n), d, plC, keepC, firmware.Undervolt)
		pt.borrP, pt.borrUV = serverSteady(o, fmt.Sprintf("fig12/borr/%d", n), d, plB, keepB, firmware.Undervolt)
		return pt
	})
	for i, n := range o.coreCounts() {
		pt := pts[i]
		staticP, baseP, borrP := pt.staticP, pt.baseP, pt.borrP
		baseUV, borrUV := pt.baseUV, pt.borrUV

		pStatic.Add(float64(n), staticP)
		pBase.Add(float64(n), baseP)
		pBorrow.Add(float64(n), borrP)
		uvBase.Add(float64(n), baseUV[0])
		// Borrowing's loaded sockets are symmetric; report their mean.
		uvBorrow.Add(float64(n), (borrUV[0]+borrUV[1])/2)

		imp := improvementPct(baseP, borrP)
		switch n {
		case 1:
			res.ExtraUndervoltAt1 = (borrUV[0]+borrUV[1])/2 - baseUV[0]
		case 2:
			res.ImprovementAt2 = imp
		case 4:
			res.ImprovementAt4 = imp
		case 8:
			res.ExtraUndervoltAt8 = (borrUV[0]+borrUV[1])/2 - baseUV[0]
			res.ImprovementAt8 = imp
		}
	}
	return res
}
