package experiments

import (
	"agsim/internal/firmware"
	"agsim/internal/parallel"
	"agsim/internal/trace"
)

// Fig03Result reproduces Fig. 3: raytrace chip power and energy-delay
// product versus active core count, adaptive versus static guardband.
type Fig03Result struct {
	// Power has series "static" and "adaptive": chip watts vs cores.
	Power *trace.Figure
	// EDP has series "static" and "adaptive": kJ·s vs cores.
	EDP *trace.Figure

	// SavingAt1, SavingAt8: power saving percent at one and eight cores
	// (paper: 13% and 3%).
	SavingAt1, SavingAt8 float64
	// EDPImprovementAt1: EDP improvement percent at one core (paper: up
	// to 20%).
	EDPImprovementAt1 float64
}

// Fig03CoreScaling runs the Fig. 3 experiment.
func Fig03CoreScaling(o Options) Fig03Result {
	const bench = "raytrace"
	res := Fig03Result{
		Power: trace.NewFigure("Fig. 3a: " + bench + " chip power vs active cores"),
		EDP:   trace.NewFigure("Fig. 3b: " + bench + " EDP vs active cores"),
	}
	pStatic := res.Power.NewSeries("static", "cores", "W")
	pAdaptive := res.Power.NewSeries("adaptive", "cores", "W")
	eStatic := res.EDP.NewSeries("static", "cores", "kJ.s")
	eAdaptive := res.EDP.NewSeries("adaptive", "cores", "kJ.s")

	// Each core count is an independent set of simulations (its own chips,
	// tag-hashed seeds), so the sweep fans out on the pool and aggregates
	// in order.
	type point struct {
		st, uv steady
		rs, ru runResult
	}
	pts := parallel.Sweep(o.pool(), o.coreCounts(), func(_ int, n int) point {
		return point{
			st: chipSteady(o, bench, n, firmware.Static),
			uv: chipSteady(o, bench, n, firmware.Undervolt),
			rs: runChipToCompletion(o, bench, n, firmware.Static),
			ru: runChipToCompletion(o, bench, n, firmware.Undervolt),
		}
	})
	for i, n := range o.coreCounts() {
		pt := pts[i]
		pStatic.Add(float64(n), pt.st.PowerW)
		pAdaptive.Add(float64(n), pt.uv.PowerW)
		eStatic.Add(float64(n), pt.rs.EnergyJ*pt.rs.Seconds/1000)
		eAdaptive.Add(float64(n), pt.ru.EnergyJ*pt.ru.Seconds/1000)

		saving := improvementPct(pt.st.PowerW, pt.uv.PowerW)
		edpImp := improvementPct(pt.rs.EnergyJ*pt.rs.Seconds, pt.ru.EnergyJ*pt.ru.Seconds)
		switch n {
		case 1:
			res.SavingAt1 = saving
			res.EDPImprovementAt1 = edpImp
		case 8:
			res.SavingAt8 = saving
		}
	}
	return res
}
