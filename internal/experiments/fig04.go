package experiments

import (
	"agsim/internal/firmware"
	"agsim/internal/parallel"
	"agsim/internal/trace"
)

// Fig04Result reproduces Fig. 4: lu_cb frequency and execution time versus
// active core count in frequency-boosting mode.
type Fig04Result struct {
	// Frequency has one series "adaptive": the settled boost frequency
	// vs cores (the static baseline is the flat 4200 MHz target).
	Frequency *trace.Figure
	// Time has series "static" and "adaptive": execution seconds vs cores.
	Time *trace.Figure

	// BoostAt1, BoostAt8: frequency gain percent (paper: 10% and 4%).
	BoostAt1, BoostAt8 float64
	// SpeedupAt1, SpeedupAt8: execution-time speedup percent (paper: 8%
	// and 3%).
	SpeedupAt1, SpeedupAt8 float64
}

// Fig04FrequencyBoost runs the Fig. 4 experiment.
func Fig04FrequencyBoost(o Options) Fig04Result {
	const bench = "lu_cb"
	res := Fig04Result{
		Frequency: trace.NewFigure("Fig. 4a: " + bench + " frequency vs active cores"),
		Time:      trace.NewFigure("Fig. 4b: " + bench + " execution time vs active cores"),
	}
	freq := res.Frequency.NewSeries("adaptive", "cores", "MHz")
	tStatic := res.Time.NewSeries("static", "cores", "s")
	tAdaptive := res.Time.NewSeries("adaptive", "cores", "s")

	const fNom = 4200.0
	type point struct {
		oc     steady
		rs, ro runResult
	}
	pts := parallel.Sweep(o.pool(), o.coreCounts(), func(_ int, n int) point {
		return point{
			oc: chipSteady(o, bench, n, firmware.Overclock),
			rs: runChipToCompletion(o, bench, n, firmware.Static),
			ro: runChipToCompletion(o, bench, n, firmware.Overclock),
		}
	})
	for i, n := range o.coreCounts() {
		pt := pts[i]
		freq.Add(float64(n), pt.oc.Freq0MHz)
		tStatic.Add(float64(n), pt.rs.Seconds)
		tAdaptive.Add(float64(n), pt.ro.Seconds)

		boost := (pt.oc.Freq0MHz/fNom - 1) * 100
		speedup := improvementPct(pt.rs.Seconds, pt.ro.Seconds)
		switch n {
		case 1:
			res.BoostAt1, res.SpeedupAt1 = boost, speedup
		case 8:
			res.BoostAt8, res.SpeedupAt8 = boost, speedup
		}
	}
	return res
}
