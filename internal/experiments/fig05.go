package experiments

import (
	"agsim/internal/firmware"
	"agsim/internal/parallel"
	"agsim/internal/trace"
	"agsim/internal/workload"
)

// Fig05Result reproduces Fig. 5: per-workload power and frequency
// improvement versus active core count across PARSEC and SPLASH-2.
type Fig05Result struct {
	// PowerImprovement: one series per workload, percent vs cores.
	PowerImprovement *trace.Figure
	// FreqImprovement: one series per workload, percent vs cores.
	FreqImprovement *trace.Figure

	// Paper headline statistics.
	// AvgPowerAt1, AvgPowerAt2, AvgPowerAt8: mean power improvement at 1,
	// 2 and 8 cores (paper: 13.3%, 10%, 6.4%).
	AvgPowerAt1, AvgPowerAt2, AvgPowerAt8 float64
	// PowerAt1Min, PowerAt1Max: the one-core band (paper: 10.7-14.8%).
	PowerAt1Min, PowerAt1Max float64
	// MinAt8: the smallest improvement seen at eight cores in either mode
	// (paper: "at least above 4%" — improvements remain positive).
	MinAt8 float64
	// MaxFreqAt1: largest one-core frequency improvement (paper: 9.6%).
	MaxFreqAt1 float64
}

// fig05Workloads picks the swept set: the five labelled-line benchmarks
// under Quick, the full multithreaded suites otherwise.
func fig05Workloads(o Options) []workload.Descriptor {
	if o.Quick {
		return workload.Fig5Workloads()
	}
	return workload.Multithreaded()
}

// Fig05Heterogeneity runs the Fig. 5 experiment.
func Fig05Heterogeneity(o Options) Fig05Result {
	res := Fig05Result{
		PowerImprovement: trace.NewFigure("Fig. 5a: power improvement vs active cores"),
		FreqImprovement:  trace.NewFigure("Fig. 5b: frequency improvement vs active cores"),
	}
	const fNom = 4200.0

	// Flatten the workload × core-count grid into one point list so the
	// pool sees every independent simulation at once.
	type gridPoint struct {
		name string
		n    int
	}
	var points []gridPoint
	for _, d := range fig05Workloads(o) {
		for _, n := range o.coreCounts() {
			points = append(points, gridPoint{d.Name, n})
		}
	}
	type imp struct{ pImp, fImp float64 }
	imps := parallel.Sweep(o.pool(), points, func(_ int, pt gridPoint) imp {
		st := chipSteady(o, pt.name, pt.n, firmware.Static)
		uv := chipSteady(o, pt.name, pt.n, firmware.Undervolt)
		oc := chipSteady(o, pt.name, pt.n, firmware.Overclock)
		return imp{
			pImp: improvementPct(st.PowerW, uv.PowerW),
			fImp: (oc.Freq0MHz/fNom - 1) * 100,
		}
	})

	var at1, at2, at8, f1 []float64
	minAt8 := 100.0
	k := 0
	for _, d := range fig05Workloads(o) {
		ps := res.PowerImprovement.NewSeries(d.Name, "cores", "%")
		fs := res.FreqImprovement.NewSeries(d.Name, "cores", "%")
		for _, n := range o.coreCounts() {
			pImp, fImp := imps[k].pImp, imps[k].fImp
			k++
			ps.Add(float64(n), pImp)
			fs.Add(float64(n), fImp)
			switch n {
			case 1:
				at1 = append(at1, pImp)
				f1 = append(f1, fImp)
			case 2:
				at2 = append(at2, pImp)
			case 8:
				at8 = append(at8, pImp)
				if pImp < minAt8 {
					minAt8 = pImp
				}
				if fImp < minAt8 {
					minAt8 = fImp
				}
			}
		}
	}
	res.AvgPowerAt1 = meanOf(at1)
	res.AvgPowerAt2 = meanOf(at2)
	res.AvgPowerAt8 = meanOf(at8)
	res.PowerAt1Min, res.PowerAt1Max = minMax(at1)
	res.MinAt8 = minAt8
	_, res.MaxFreqAt1 = minMax(f1)
	return res
}

func minMax(xs []float64) (min, max float64) {
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}
