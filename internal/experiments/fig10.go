package experiments

import (
	"agsim/internal/firmware"
	"agsim/internal/parallel"
	"agsim/internal/stats"
	"agsim/internal/trace"
	"agsim/internal/workload"
)

// Fig10Result reproduces Fig. 10: the causal chain from workload power
// through passive voltage drop to the adaptive guardband system's
// undervolting and overclocking headroom, across the full benchmark
// population at eight active cores.
type Fig10Result struct {
	// PowerVsPassive (10a): x chip watts, y loadline+IR millivolts.
	PowerVsPassive *trace.Figure
	// PassiveVsUndervolt (10b): x passive mV, y undervolt mV, plus a
	// second series for the selected Vdd.
	PassiveVsUndervolt *trace.Figure
	// VddVsSaving (10c): x selected Vdd mV, y energy saving percent.
	VddVsSaving *trace.Figure
	// PassiveVsBoost (10d): x passive mV, y frequency increase percent.
	PassiveVsBoost *trace.Figure

	// PowerPassiveR2: linearity of 10a (paper: "strong linear
	// relationship").
	PowerPassiveR2 float64
	// UndervoltSlope: mV of undervolt lost per mV of passive drop (paper
	// Fig. 10b: about -1).
	UndervoltSlope float64
	// SavingRange: min and max energy saving percent (paper: ~2-12%).
	SavingMin, SavingMax float64
	// BoostRange: min and max frequency increase (paper: ~4-10%).
	BoostMin, BoostMax float64
}

// fig10Workloads returns the population: all suites (the paper adds 27
// SPECrate workloads to the 17 PARSEC/SPLASH-2 ones).
func fig10Workloads(o Options) []workload.Descriptor {
	if o.Quick {
		return workload.Fig5Workloads()
	}
	ds := workload.Multithreaded()
	ds = append(ds, workload.BySuite(workload.SPECCPU)...)
	return ds
}

// Fig10PassiveDropCorrelation runs the Fig. 10 experiment.
func Fig10PassiveDropCorrelation(o Options) Fig10Result {
	res := Fig10Result{
		PowerVsPassive:     trace.NewFigure("Fig. 10a: loadline+IR drop vs chip power"),
		PassiveVsUndervolt: trace.NewFigure("Fig. 10b: undervolt vs loadline+IR drop"),
		VddVsSaving:        trace.NewFigure("Fig. 10c: energy saving vs Vdd selected"),
		PassiveVsBoost:     trace.NewFigure("Fig. 10d: frequency increase vs loadline+IR drop"),
	}
	a := res.PowerVsPassive.NewSeries("benchmarks", "W", "mV")
	bU := res.PassiveVsUndervolt.NewSeries("undervolt", "mV", "mV")
	bV := res.PassiveVsUndervolt.NewSeries("vdd-selected", "mV", "mV")
	cS := res.VddVsSaving.NewSeries("benchmarks", "mV", "%")
	dB := res.PassiveVsBoost.NewSeries("benchmarks", "mV", "%")

	var powers, passives, uvPassives, uvs, savings []float64
	res.SavingMin, res.BoostMin = 1e9, 1e9
	const n = 8
	type point struct{ st, uv, oc steady }
	pts := parallel.Sweep(o.pool(), fig10Workloads(o), func(_ int, d workload.Descriptor) point {
		return point{
			st: chipSteady(o, d.Name, n, firmware.Static),
			uv: chipSteady(o, d.Name, n, firmware.Undervolt),
			oc: chipSteady(o, d.Name, n, firmware.Overclock),
		}
	})
	for _, pt := range pts {
		st, uv, oc := pt.st, pt.uv, pt.oc

		a.Add(st.PowerW, st.PassiveMV)
		powers = append(powers, st.PowerW)
		passives = append(passives, st.PassiveMV)

		bU.Add(uv.PassiveMV, uv.UndervoltMV)
		bV.Add(uv.PassiveMV, uv.SetPointMV)
		uvPassives = append(uvPassives, uv.PassiveMV)
		uvs = append(uvs, uv.UndervoltMV)

		saving := improvementPct(st.PowerW, uv.PowerW)
		cS.Add(uv.SetPointMV, saving)
		savings = append(savings, saving)
		if saving < res.SavingMin {
			res.SavingMin = saving
		}
		if saving > res.SavingMax {
			res.SavingMax = saving
		}

		boost := (oc.Freq0MHz/4200 - 1) * 100
		dB.Add(oc.PassiveMV, boost)
		if boost < res.BoostMin {
			res.BoostMin = boost
		}
		if boost > res.BoostMax {
			res.BoostMax = boost
		}
	}

	if fit, err := stats.Fit(powers, passives); err == nil {
		res.PowerPassiveR2 = fit.R2
	}
	if fit, err := stats.Fit(uvPassives, uvs); err == nil {
		res.UndervoltSlope = fit.Slope
	}
	_ = savings
	return res
}
