package experiments

import (
	"math"
	"reflect"
	"testing"
)

// This file is the accuracy harness of the multi-rate stepping engine: the
// macro lane (event-horizon leaps, the default) is held against the exact
// lane (pure 1 ms stepping, Options.Exact) on every registered experiment's
// headline statistics.
//
// Tolerance: each stat must land within 1% of the exact lane's value, with
// a 0.05 absolute floor for near-zero stats (violation counts, percentage
// points around zero) where a single quantized window decision flipping
// would otherwise dominate the relative error.

func headlineTol(exact float64) float64 {
	return math.Max(0.01*math.Abs(exact), 0.05)
}

func TestMacroLaneHeadlinesMatchExact(t *testing.T) {
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			macroOpts := QuickOptions()
			exactOpts := QuickOptions()
			exactOpts.Exact = true
			macro := e.Run(macroOpts)
			exact := e.Run(exactOpts)
			if len(macro.Headline) != len(exact.Headline) {
				t.Fatalf("headline count differs: macro %d, exact %d", len(macro.Headline), len(exact.Headline))
			}
			for i, ms := range macro.Headline {
				es := exact.Headline[i]
				if ms.Name != es.Name {
					t.Fatalf("headline %d name differs: %q vs %q", i, ms.Name, es.Name)
				}
				if d := math.Abs(ms.Value - es.Value); d > headlineTol(es.Value) {
					t.Errorf("%s: macro %.6g vs exact %.6g (|Δ|=%.4g > tol %.4g)",
						ms.Name, ms.Value, es.Value, d, headlineTol(es.Value))
				}
			}
		})
	}
}

// TestMacroLaneParallelBitIdentical pins the macro lane's determinism
// contract: the leap schedule is derived from per-chip state and
// time-indexed RNG streams only, so worker count cannot change a single
// bit. DroopCensus exercises the most leap-sensitive accounting (event
// counts, busy-window shares).
func TestMacroLaneParallelBitIdentical(t *testing.T) {
	serial := DroopCensus(optsWithWorkers(1))
	par := DroopCensus(optsWithWorkers(4))
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("macro DroopCensus diverged across worker counts:\nserial: %+v\nparallel: %+v", serial, par)
	}
}

// TestExactLaneParallelBitIdentical keeps the same contract on the
// reference lane.
func TestExactLaneParallelBitIdentical(t *testing.T) {
	exactOpts := func(w int) Options {
		o := optsWithWorkers(w)
		o.Exact = true
		return o
	}
	serial := Fig03CoreScaling(exactOpts(1))
	par := Fig03CoreScaling(exactOpts(4))
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("exact Fig03 diverged across worker counts:\nserial: %+v\nparallel: %+v", serial, par)
	}
}
