package experiments

import (
	"reflect"
	"testing"
)

// The acceptance contract: websearch-qos headline stats bit-identical
// across workers 1/4/8, on both the scalar and batched lanes.
func TestWebsearchQoSWorkerBitIdentical(t *testing.T) {
	for _, batched := range []bool{false, true} {
		o := optsWithWorkers(1)
		o.Batched = batched
		ref := WebsearchQoS(o)
		for _, w := range []int{4, 8} {
			o := optsWithWorkers(w)
			o.Batched = batched
			got := WebsearchQoS(o)
			if !reflect.DeepEqual(ref, got) {
				t.Errorf("batched=%v: websearch-qos diverged between workers 1 and %d", batched, w)
			}
		}
	}
}

// The batched lane must reproduce the scalar lane exactly: fleet advance
// via engine AdvanceNode is server.Advance on the arrays.
func TestWebsearchQoSBatchedBitIdentical(t *testing.T) {
	scalar := WebsearchQoS(optsWithWorkers(2))
	o := optsWithWorkers(2)
	o.Batched = true
	batched := WebsearchQoS(o)
	if !reflect.DeepEqual(scalar, batched) {
		t.Errorf("websearch-qos diverged between scalar and batched lanes")
	}
}

// Sanity on the physics: boost must not lengthen the tail relative to
// static, energy mode must not cost more Joules per query, and the served
// count must be positive with no shedding at sub-saturation loads.
func TestWebsearchQoSPolicyOrdering(t *testing.T) {
	r := WebsearchQoS(QuickOptions())
	if r.QueriesServed <= 0 {
		t.Fatal("no queries served")
	}
	if r.P99BoostSec > r.P99StaticSec*1.001 {
		t.Errorf("ags-boost p99 %.4f s worse than static %.4f s", r.P99BoostSec, r.P99StaticSec)
	}
	if r.JoulesPerQueryEnergy > r.JoulesPerQueryStatic*1.001 {
		t.Errorf("ags-energy J/query %.4f worse than static %.4f",
			r.JoulesPerQueryEnergy, r.JoulesPerQueryStatic)
	}
	if r.EnergySavingPct <= 0 {
		t.Errorf("AGS energy saving %.3f%% not positive", r.EnergySavingPct)
	}
}
