package experiments

import (
	"fmt"

	"agsim/internal/firmware"
	"agsim/internal/parallel"
	"agsim/internal/trace"
	"agsim/internal/workload"
)

// Fig13Result reproduces Fig. 13: adaptive guardbanding's power improvement
// over a static guardband, under consolidation versus loadline borrowing,
// for every PARSEC and SPLASH-2 workload across core counts.
type Fig13Result struct {
	// Baseline and Borrowing: one series per workload, improvement
	// percent vs active cores.
	Baseline  *trace.Figure
	Borrowing *trace.Figure

	// AvgBaselineAt8, AvgBorrowingAt8: mean improvements at eight cores
	// (paper: 5.5% and 13.8%).
	AvgBaselineAt8, AvgBorrowingAt8 float64
}

// Fig13BorrowingSweep runs the Fig. 13 experiment. Improvements are
// measured against a static guardband under the *same* schedule, isolating
// the guardbanding benefit that each schedule leaves available — the
// paper's framing.
func Fig13BorrowingSweep(o Options) Fig13Result {
	res := Fig13Result{
		Baseline:  trace.NewFigure("Fig. 13: improvement under consolidation"),
		Borrowing: trace.NewFigure("Fig. 13: improvement under loadline borrowing"),
	}

	workloads := workload.Multithreaded()
	if o.Quick {
		workloads = workload.Fig5Workloads()
	}

	type gridPoint struct {
		d workload.Descriptor
		n int
	}
	var points []gridPoint
	for _, d := range workloads {
		for _, n := range o.coreCounts() {
			points = append(points, gridPoint{d, n})
		}
	}
	type imp struct{ impC, impB float64 }
	imps := parallel.Sweep(o.pool(), points, func(_ int, pt gridPoint) imp {
		plC, keepC := fig12Schedule(pt.n, false)
		plB, keepB := fig12Schedule(pt.n, true)

		staticC, _ := serverSteady(o, fmt.Sprintf("fig13/stc/%s/%d", pt.d.Name, pt.n), pt.d, plC, keepC, firmware.Static)
		agC, _ := serverSteady(o, fmt.Sprintf("fig13/agc/%s/%d", pt.d.Name, pt.n), pt.d, plC, keepC, firmware.Undervolt)
		staticB, _ := serverSteady(o, fmt.Sprintf("fig13/stb/%s/%d", pt.d.Name, pt.n), pt.d, plB, keepB, firmware.Static)
		agB, _ := serverSteady(o, fmt.Sprintf("fig13/agb/%s/%d", pt.d.Name, pt.n), pt.d, plB, keepB, firmware.Undervolt)

		return imp{impC: improvementPct(staticC, agC), impB: improvementPct(staticB, agB)}
	})

	var base8, borr8 []float64
	k := 0
	for _, d := range workloads {
		bs := res.Baseline.NewSeries(d.Name, "cores", "%")
		rs := res.Borrowing.NewSeries(d.Name, "cores", "%")
		for _, n := range o.coreCounts() {
			impC, impB := imps[k].impC, imps[k].impB
			k++
			bs.Add(float64(n), impC)
			rs.Add(float64(n), impB)
			if n == 8 {
				base8 = append(base8, impC)
				borr8 = append(borr8, impB)
			}
		}
	}
	res.AvgBaselineAt8 = meanOf(base8)
	res.AvgBorrowingAt8 = meanOf(borr8)
	return res
}
