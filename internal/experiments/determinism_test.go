package experiments

import (
	"reflect"
	"testing"
)

// The parallel sweep engine's contract is bit-identical results at any
// worker count: every sweep point owns its chip/server/cluster and derives
// all randomness from tag-hashed seeds, so execution order cannot leak
// into the numbers. These tests pin that contract on a chip-level driver
// (Fig03) and the cluster-level sweep (Datacenter).

func optsWithWorkers(w int) Options {
	o := QuickOptions()
	o.Workers = w
	return o
}

func TestFig03ParallelBitIdentical(t *testing.T) {
	serial := Fig03CoreScaling(optsWithWorkers(1))
	par := Fig03CoreScaling(optsWithWorkers(4))
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("Fig03 parallel result diverged from serial:\nserial: %+v\nparallel: %+v", serial, par)
	}
}

func TestDatacenterParallelBitIdentical(t *testing.T) {
	serial := DatacenterSweep(optsWithWorkers(1))
	par := DatacenterSweep(optsWithWorkers(4))
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("Datacenter parallel result diverged from serial:\nserial: %+v\nparallel: %+v", serial, par)
	}
}

func TestFig07MeshParallelBitIdentical(t *testing.T) {
	// The mesh-fidelity lane keeps the determinism contract: the transfer
	// matrix is computed once per chip from pure arithmetic, so worker
	// count cannot leak into the numbers.
	meshOpts := func(w int) Options {
		o := optsWithWorkers(w)
		o.Mesh = true
		return o
	}
	serial := Fig07VoltageDrop(meshOpts(1))
	par := Fig07VoltageDrop(meshOpts(4))
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("mesh Fig07 parallel result diverged from serial:\nserial: %+v\nparallel: %+v", serial, par)
	}
}

func TestSameSeedRunsMatch(t *testing.T) {
	a := Fig03CoreScaling(optsWithWorkers(4))
	b := Fig03CoreScaling(optsWithWorkers(4))
	if !reflect.DeepEqual(a, b) {
		t.Error("two same-seed parallel runs of Fig03 diverged")
	}
}

func TestDVFSSameSeedRunsMatch(t *testing.T) {
	// Regression for the old fmt.Sprintf("dvfs/%p", ...) chip tag, which
	// seeded the run from a pointer address and changed every execution.
	a := DVFSComparison(optsWithWorkers(2))
	b := DVFSComparison(optsWithWorkers(1))
	if !reflect.DeepEqual(a, b) {
		t.Error("two same-seed runs of DVFSComparison diverged")
	}
}
