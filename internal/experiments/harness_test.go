package experiments

import (
	"testing"

	"agsim/internal/firmware"
)

func TestHashDeterministicAndSpread(t *testing.T) {
	if hash("abc") != hash("abc") {
		t.Error("hash not deterministic")
	}
	if hash("abc") == hash("abd") {
		t.Error("hash collides on adjacent strings")
	}
}

func TestImprovementPct(t *testing.T) {
	if got := improvementPct(100, 90); got != 10 {
		t.Errorf("improvementPct = %v", got)
	}
	if got := improvementPct(0, 50); got != 0 {
		t.Errorf("improvementPct(0, .) = %v", got)
	}
	if got := improvementPct(100, 110); got != -10 {
		t.Errorf("regression = %v", got)
	}
}

func TestOptionsCoreCounts(t *testing.T) {
	full := DefaultOptions().coreCounts()
	if len(full) != 8 || full[0] != 1 || full[7] != 8 {
		t.Errorf("full sweep = %v", full)
	}
	quick := QuickOptions().coreCounts()
	if len(quick) != 3 {
		t.Errorf("quick sweep = %v", quick)
	}
	// Both must include the endpoints the headline statistics read.
	for _, sweep := range [][]int{full, quick} {
		has1, has8 := false, false
		for _, n := range sweep {
			has1 = has1 || n == 1
			has8 = has8 || n == 8
		}
		if !has1 || !has8 {
			t.Errorf("sweep %v missing endpoints", sweep)
		}
	}
}

func TestChipSteadyIsDeterministic(t *testing.T) {
	o := QuickOptions()
	a := chipSteady(o, "raytrace", 4, firmware.Undervolt)
	b := chipSteady(o, "raytrace", 4, firmware.Undervolt)
	if a.PowerW != b.PowerW || a.Freq0MHz != b.Freq0MHz || a.UndervoltMV != b.UndervoltMV {
		t.Errorf("same-options measurements diverged: %+v vs %+v", a, b)
	}
}

func TestFig12ScheduleShapes(t *testing.T) {
	for n := 1; n <= 8; n++ {
		plC, keepC := fig12Schedule(n, false)
		if len(plC) != n || keepC[0]+n != 8 || keepC[1] != 0 {
			t.Errorf("consolidated n=%d: %v %v", n, plC, keepC)
		}
		plB, keepB := fig12Schedule(n, true)
		if len(plB) != n {
			t.Errorf("borrowed n=%d placements: %v", n, plB)
		}
		on := n + keepB[0] + keepB[1]
		if on != 8 {
			t.Errorf("borrowed n=%d keeps %d cores on, want 8", n, on)
		}
	}
}
