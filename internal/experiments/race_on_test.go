//go:build race

package experiments

// raceDetector reports that this binary was built with -race. The
// exhaustive identity matrices trim to a representative subset under the
// detector: race coverage needs the concurrency shapes (parallel subtests
// sharing the warm cache and arenas), not the full numeric sweep the
// unraced tier-1 run already pins, and the full matrix does not fit the
// package timeout at detector speed.
const raceDetector = true
