package experiments

import (
	"fmt"
	"math"

	"agsim/internal/cluster"
	"agsim/internal/firmware"
	"agsim/internal/fleet"
	"agsim/internal/parallel"
	"agsim/internal/sample"
	"agsim/internal/server"
	"agsim/internal/trace"
	"agsim/internal/traffic"
	"agsim/internal/workload"
)

// WebsearchQoSResult is the fleet-scale serving study the paper's §5.2.2
// QoS discussion points at: AGS vs static guardband on request tail
// latency and energy per query, under open-loop traffic across load
// levels. Three guardband policies serve the identical arrival streams:
//
//   - static: the full static guardband (the baseline datacenter);
//   - ags-energy: adaptive undervolting — same frequency, lower power, so
//     latency holds and Joules/query falls (the §5.1 energy story);
//   - ags-boost: adaptive overclocking — the reclaimed margin buys
//     frequency, so capacity rises and the tail shortens (the §5.2
//     performance story).
type WebsearchQoSResult struct {
	// Latency: p99 request latency vs offered load, one series per policy.
	Latency *trace.Figure
	// Energy: Joules per served query vs offered load, one series per
	// policy.
	Energy *trace.Figure
	// Table: per policy x load: served, dropped, p50/p95/p99, J/query.
	Table *trace.Table

	// Peak-load (highest swept utilization) headline numbers.
	P99StaticSec float64
	P99BoostSec  float64
	// JoulesPerQueryStatic/Energy compare the energy policies at peak load.
	JoulesPerQueryStatic float64
	JoulesPerQueryEnergy float64
	// EnergySavingPct is ags-energy's Joules/query saving over static at
	// peak load.
	EnergySavingPct float64
	// QueriesServed is the static policy's served count at peak load —
	// arrival streams are deterministic, so this is bit-identical across
	// workers and lanes.
	QueriesServed float64
}

// wsqPolicy names one guardband policy of the sweep.
type wsqPolicy struct {
	name string
	mode firmware.Mode
}

var wsqPolicies = []wsqPolicy{
	{"static", firmware.Static},
	{"ags-energy", firmware.Undervolt},
	{"ags-boost", firmware.Overclock},
}

// wsqLoads returns the swept utilization levels (fractions of the static
// fleet's serving capacity). The sweep stops at 0.9: open queues amplify
// capacity noise without bound as utilization approaches 1, and past 0.9
// the tail stops discriminating between policies and starts measuring the
// amplification itself.
func (o Options) wsqLoads() []float64 {
	if o.Quick {
		return []float64{0.75, 0.9}
	}
	return []float64{0.55, 0.75, 0.9}
}

// wsqEpochs returns the traffic epoch count over the measurement span:
// capacity is point-read and the generator advanced once per epoch.
func (o Options) wsqEpochs() int {
	if o.Quick {
		return 4
	}
	return 8
}

// wsqPlacements fills every core of a node with serving threads.
func wsqPlacements(cfg server.Config) []server.Placement {
	pl := make([]server.Placement, cfg.Sockets*cfg.CoresPerSocket)
	for c := range pl {
		pl[c] = server.Placement{Socket: c / cfg.CoresPerSocket, Core: c % cfg.CoresPerSocket}
	}
	return pl
}

// wsqCapacityGIPS probes one static-guardband node's steady serving
// throughput and quantizes it to integer GIPS. The quantized probe
// calibrates every policy's arrival rates, so the offered load — and with
// it every arrival timestamp and request id — is identical across
// policies, worker counts, and stepping lanes (lane-level throughput
// differences are far below the 1 GIPS quantum).
func wsqCapacityGIPS(o Options) float64 {
	cfg := o.serverConfig(o.Seed ^ hash("wsq/probe"))
	cfg.Recorder = o.Recorder.Shard("wsq/probe")
	s := acquireServer(cfg)
	s.MustSubmit("serve", workload.MustGet("websearch"), wsqPlacements(cfg), 1e9)
	s.SetMode(firmware.Static)
	o.settleServer(s, "wsq/probe")
	var mips float64
	k := o.serverMeasureSpan(s, o.MeasureSec, func(dt float64) {
		for si := 0; si < s.Sockets(); si++ {
			mips += float64(s.Chip(si).TotalMIPS()) * dt
		}
	})
	releaseServer(s)
	return math.Max(1, math.Round(mips/k/1000))
}

// wsqTrafficConfig builds the arrival process for one load level: the base
// rate targets load x the probed static capacity, with a one-cycle diurnal
// swing and short burst episodes overlaid so queues see realistic
// non-stationarity. Rates are integer-rounded — one more quantization that
// keeps the stream identical wherever it is replayed.
func (o Options) wsqTrafficConfig(nodes int, load, capGIPS float64) traffic.Config {
	const demandGInst = 0.4
	tc := traffic.Config{
		Nodes:            nodes,
		RatePerSec:       math.Max(1, math.Round(load*capGIPS/demandGInst)),
		DemandGInst:      demandGInst,
		DiurnalAmplitude: 0.1,
		DiurnalPeriodSec: o.MeasureSec,
		BurstRatePerSec:  math.Round(2/o.MeasureSec*8) / 8,
		BurstMeanSec:     o.MeasureSec / 32,
		BurstFactor:      1.25,
		QueueCap:         256,
		Seed:             o.Seed,
	}
	return tc
}

// wsqPoint is one (policy, load) cell's outcome.
type wsqPoint struct {
	served, dropped   uint64
	p50, p95, p99     float64
	joulesPerQuery    float64
	totalEnergyJoules float64
}

// runWebsearchPoint serves one load level under one guardband policy on a
// fresh fleet and returns the cell's latency and energy accounting.
func runWebsearchPoint(o Options, pol wsqPolicy, load, capGIPS float64) wsqPoint {
	nodes := o.dcNodes()
	rec := o.Recorder.Shard(fmt.Sprintf("wsq/%s/%03d", pol.name, int(load*100)))
	f := fleet.MustNew(fleet.Config{
		Nodes:    nodes,
		Template: o.serverConfig(o.Seed),
		Workers:  o.Workers,
		// Sampled takes precedence over Batched, as everywhere: settling
		// stays detailed and each node gets its own governor.
		Batched:  o.Batched && !o.Sampled,
		Recorder: rec,
		Build:    func(cfg server.Config) (*server.Server, error) { return acquireServer(cfg), nil },
		Release:  releaseServer,
	})
	ws := workload.MustGet("websearch")
	pl := wsqPlacements(o.serverConfig(0))
	for i := 0; i < nodes; i++ {
		s := f.Node(i)
		s.MustSubmit("serve", ws, pl, 1e9)
		s.SetMode(pol.mode)
	}

	var govs []*sample.Governor
	if o.Sampled {
		// Governors are created before the first span and reused across
		// epochs so their phase statistics accumulate over the whole run.
		govs = make([]*sample.Governor, nodes)
		for i := range govs {
			govs[i] = o.governor(f.Node(i))
		}
	}

	f.Advance(o.SettleSec)
	f.ResetEnergy()

	tc := o.wsqTrafficConfig(nodes, load, capGIPS)
	tc.Recorder = rec.Shard("traffic")
	tr := traffic.New(tc)
	caps := make([]float64, nodes)
	epochs := o.wsqEpochs()
	epochSec := o.MeasureSec / float64(epochs)
	for e := 0; e < epochs; e++ {
		// Capacity is a point read at the epoch boundary, quantized to
		// integer GIPS: coarse enough that stepping-lane noise vanishes,
		// fine enough that the policies' real capacity differences (a few
		// percent of ~50 GIPS) stay visible to the queues.
		for i := range caps {
			caps[i] = math.Max(1, math.Round(f.NodeMIPS(i)/1000))
		}
		tr.Epoch(f.Pool(), epochSec, caps)
		if o.Sampled {
			f.ForEachNode(func(i int, s *server.Server) {
				govs[i].Run(epochSec, nil)
			})
		} else {
			f.Advance(epochSec)
		}
	}

	idleW := cluster.DefaultNodeConfig(0).PlatformIdleW
	energy := f.TotalEnergyJ() + idleW*float64(nodes)*o.MeasureSec
	sum := tr.Latency()
	f.Close()

	pt := wsqPoint{
		served:            sum.Completed,
		dropped:           sum.Dropped,
		p50:               sum.P50Sec,
		p95:               sum.P95Sec,
		p99:               sum.P99Sec,
		totalEnergyJoules: energy,
	}
	if sum.Completed > 0 {
		pt.joulesPerQuery = energy / float64(sum.Completed)
	}
	return pt
}

// WebsearchQoS runs the load x policy grid. Each cell is an independent
// fleet simulation; cells fan out on the worker pool and aggregate in
// order.
func WebsearchQoS(o Options) WebsearchQoSResult {
	res := WebsearchQoSResult{
		Latency: trace.NewFigure("WebSearch QoS: p99 request latency vs offered load"),
		Energy:  trace.NewFigure("WebSearch QoS: Joules per query vs offered load"),
		Table: trace.NewTable("WebSearch QoS: policy x load",
			"load %", "served", "dropped", "p50 s", "p95 s", "p99 s", "J/query"),
	}
	capGIPS := wsqCapacityGIPS(o)
	loads := o.wsqLoads()

	type cell struct {
		pol  wsqPolicy
		load float64
	}
	var grid []cell
	for _, pol := range wsqPolicies {
		for _, load := range loads {
			grid = append(grid, cell{pol, load})
		}
	}
	pts := parallel.Sweep(o.pool(), grid, func(_ int, c cell) wsqPoint {
		return runWebsearchPoint(o, c.pol, c.load, capGIPS)
	})

	peak := loads[len(loads)-1]
	k := 0
	for _, pol := range wsqPolicies {
		ls := res.Latency.NewSeries(pol.name, "load", "p99 (s)")
		es := res.Energy.NewSeries(pol.name, "load", "J/query")
		for _, load := range loads {
			pt := pts[k]
			k++
			ls.Add(load, pt.p99)
			es.Add(load, pt.joulesPerQuery)
			res.Table.AddRow(fmt.Sprintf("%s @ %.0f%%", pol.name, load*100),
				load*100, float64(pt.served), float64(pt.dropped),
				pt.p50, pt.p95, pt.p99, pt.joulesPerQuery)
			if load == peak {
				switch pol.name {
				case "static":
					res.P99StaticSec = pt.p99
					res.JoulesPerQueryStatic = pt.joulesPerQuery
					res.QueriesServed = float64(pt.served)
				case "ags-energy":
					res.JoulesPerQueryEnergy = pt.joulesPerQuery
				case "ags-boost":
					res.P99BoostSec = pt.p99
				}
			}
		}
	}
	res.EnergySavingPct = improvementPct(res.JoulesPerQueryStatic, res.JoulesPerQueryEnergy)
	return res
}

// WebsearchQoSSimSeconds returns the simulated seconds one WebsearchQoS
// call covers (probe plus every grid cell's settle and measure spans), for
// the benchmarks' sim_s/op metric.
func WebsearchQoSSimSeconds(o Options) float64 {
	cells := float64(len(wsqPolicies) * len(o.wsqLoads()))
	return (cells + 1) * (o.SettleSec + o.MeasureSec)
}
