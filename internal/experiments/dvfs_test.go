package experiments

import "testing"

func TestDVFSComparison(t *testing.T) {
	r := DVFSComparison(QuickOptions())
	if r.AdaptiveSavingVsNominalPct < 3 {
		t.Errorf("adaptive saving vs nominal P-state = %.1f%%, want solid", r.AdaptiveSavingVsNominalPct)
	}
	ag := r.Plane.Lookup("adaptive")
	dvfs := r.Plane.Lookup("dvfs")
	if ag == nil || len(ag.Points) != 1 || dvfs == nil || len(dvfs.Points) < 2 {
		t.Fatal("missing plane series")
	}
	// Adaptive guardbanding must dominate the nominal P-state: same (or
	// better) time at less energy. DVFS's slower points trade time for
	// energy, so their seconds must exceed adaptive's.
	agP := ag.Points[0]
	for _, p := range dvfs.Points {
		if p.Y < agP.Y && p.X <= agP.X {
			t.Errorf("a P-state dominates adaptive guardbanding: %+v vs %+v", p, agP)
		}
	}
	// And the DVFS curve is a real trade-off: sorted by time, energy
	// falls.
	if r.DVFSSecondsForAdaptiveEnergy > 0 && r.DVFSSecondsForAdaptiveEnergy <= agP.X {
		t.Errorf("DVFS matched adaptive energy without running slower: %v vs %v",
			r.DVFSSecondsForAdaptiveEnergy, agP.X)
	}
}
