// Warm-started sweeps: every sweep point today pays a settle span —
// simulated seconds driving the electrical and firmware loops to steady
// state — before its measurement begins, and with the default fidelity the
// settle dominates the point's runtime. A point's settled state is a pure
// function of its cache key (the config prefix adjacent points and repeat
// runs share: shape key, tag, seed, settle span, lane flags, recorder
// construction), so the first execution of a key snapshots the settled
// object (internal/snapshot) into a process-wide cache and every later
// execution restores it instead of re-settling. Restore is bit-identical
// to settling — pinned by TestWarmStartExperimentsBitIdentical — so
// Options.WarmStart changes wall-clock only, never results.
package experiments

import (
	"fmt"
	"os"
	"strconv"
	"sync"

	"agsim/internal/arena"
	"agsim/internal/chip"
	"agsim/internal/cluster"
	"agsim/internal/server"
	"agsim/internal/snapshot"
)

// warmRoot is what the cache can hold: anything that settles and states
// its structural identity (chips, servers, clusters).
type warmRoot interface {
	Settle(seconds float64)
	ShapeKey() string
}

// warmImages is the process-wide settled-state cache. Bounded: once
// CapBytes of images are resident, new keys settle cold and are not
// inserted (existing keys keep hitting), so a many-lane report run cannot
// grow the cache without bound.
type warmImages struct {
	mu     sync.Mutex
	images map[string][]byte
	bytes  int64
	cap    int64
	hits   uint64
	misses uint64
	full   uint64
}

func warmCapBytes() int64 {
	if s := os.Getenv("AGSIM_WARM_CACHE_MB"); s != "" {
		if mb, err := strconv.Atoi(s); err == nil && mb >= 0 {
			return int64(mb) << 20
		}
	}
	return 768 << 20
}

var warmCache = &warmImages{images: map[string][]byte{}, cap: warmCapBytes()}

func (w *warmImages) get(key string) ([]byte, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	img, ok := w.images[key]
	if ok {
		w.hits++
	} else {
		w.misses++
	}
	return img, ok
}

func (w *warmImages) put(key string, img []byte) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.images[key]; ok {
		return
	}
	if w.bytes+int64(len(img)) > w.cap {
		w.full++
		return
	}
	w.images[key] = img
	w.bytes += int64(len(img))
}

func (w *warmImages) drop(key string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if img, ok := w.images[key]; ok {
		w.bytes -= int64(len(img))
		delete(w.images, key)
	}
}

// WarmStats reports the settled-state cache's hit/miss/bytes counters.
type WarmStats struct {
	Hits, Misses, Full uint64
	Entries            int
	Bytes              int64
}

// WarmCacheStats returns the process-wide warm cache counters.
func WarmCacheStats() WarmStats {
	warmCache.mu.Lock()
	defer warmCache.mu.Unlock()
	return WarmStats{
		Hits: warmCache.hits, Misses: warmCache.misses, Full: warmCache.full,
		Entries: len(warmCache.images), Bytes: warmCache.bytes,
	}
}

// ResetWarmCache empties the settled-state cache and its counters; tests
// use it to isolate priming from reuse.
func ResetWarmCache() {
	warmCache.mu.Lock()
	defer warmCache.mu.Unlock()
	warmCache.images = map[string][]byte{}
	warmCache.bytes = 0
	warmCache.hits, warmCache.misses, warmCache.full = 0, 0, 0
}

// warmKey builds the cache key: everything the settled state is a
// function of. The shape key covers structure (core counts, mesh lane,
// exact lane, ablation overrides); the tag covers the point's coordinates
// (workload, thread count, mode, parameter overrides — by the same
// convention that salts the point's RNG streams and names its recorder
// shard); the options cover seed, settle span and recorder construction.
// arena.Versioned folds in the binary-layout generation so images from an
// older layout can never warm-start a newer binary.
func (o Options) warmKey(kind, shape, tag string) string {
	return arena.Versioned(fmt.Sprintf("warm|%s|%s|%s|settle=%g|seed=%d|rec=%s",
		kind, shape, tag, o.SettleSec, o.Seed, o.Recorder.Fingerprint()))
}

// warmSettle restores the point's settled baseline from the cache, or
// settles cold and caches the result. Restore failures (a stale or
// corrupt image) fall back to the cold path after dropping the entry.
func (o Options) warmSettle(root warmRoot, kind, tag string) {
	if !o.WarmStart {
		root.Settle(o.SettleSec)
		return
	}
	key := o.warmKey(kind, root.ShapeKey(), tag)
	if img, ok := warmCache.get(key); ok {
		if _, err := snapshot.Load(img, root); err == nil {
			return
		}
		warmCache.drop(key)
	}
	root.Settle(o.SettleSec)
	if img, err := snapshot.Save(root, snapshot.Meta{Seed: o.Seed, Revision: tag}); err == nil {
		warmCache.put(key, img)
	}
}

func (o Options) settleChip(c *chip.Chip, tag string)       { o.warmSettle(c, "chip", tag) }
func (o Options) settleServer(s *server.Server, tag string) { o.warmSettle(s, "server", tag) }
func (o Options) settleCluster(c *cluster.Cluster, tag string) {
	o.warmSettle(c, "cluster", tag)
}
