package cpm

import (
	"math"
	"testing"

	"agsim/internal/rng"
	"agsim/internal/units"
	"agsim/internal/vf"
)

func quietSensor(t *testing.T, seed uint64) *Sensor {
	t.Helper()
	cfg := DefaultConfig(vf.Default())
	cfg.NoiseMV = 0
	cfg.PathOffsetSpreadMV = 0
	cfg.MVPerBitSpread = 0
	return New(cfg, rng.New(seed, "cpm-test"))
}

func TestValueMonotoneInVoltage(t *testing.T) {
	s := quietSensor(t, 1)
	prev := -1
	for v := units.Millivolt(950); v <= 1280; v += 5 {
		got := s.Value(v, 4200)
		if got < prev {
			t.Fatalf("CPM value decreased with voltage at %v: %d < %d", v, got, prev)
		}
		prev = got
	}
}

func TestValueAntiMonotoneInFrequency(t *testing.T) {
	s := quietSensor(t, 2)
	prev := MaxValue + 1
	for f := units.Megahertz(2800); f <= 4620; f += 28 {
		got := s.Value(1200, f)
		if got > prev {
			t.Fatalf("CPM value increased with frequency at %v: %d > %d", f, got, prev)
		}
		prev = got
	}
}

func TestValueRange(t *testing.T) {
	s := quietSensor(t, 3)
	if got := s.Value(600, 4620); got != 0 {
		t.Errorf("starved sensor = %d, want 0", got)
	}
	if got := s.Value(2000, 2800); got != MaxValue {
		t.Errorf("flooded sensor = %d, want %d", got, MaxValue)
	}
}

func TestCalibrationTargetAtResidualMargin(t *testing.T) {
	// When the core sits exactly at V_req + residual, the sensor must read
	// its calibration target: that is what "calibrated" means.
	law := vf.Default()
	s := quietSensor(t, 4)
	v := law.VReq(4200) + law.ResidualMV
	if got := s.Value(v, 4200); got != CalibTarget {
		t.Errorf("calibrated point reads %d, want %d", got, CalibTarget)
	}
}

func TestSensitivityScalesWithFrequency(t *testing.T) {
	s := quietSensor(t, 5)
	atPeak := s.MVPerBit(4200)
	if math.Abs(atPeak-21) > 0.01 {
		t.Errorf("peak sensitivity = %v, want ~21 mV/bit (Fig. 6a)", atPeak)
	}
	atLow := s.MVPerBit(3600)
	if atLow >= atPeak {
		t.Errorf("sensitivity should shrink at lower frequency: %v vs %v", atLow, atPeak)
	}
	if s.MVPerBit(100) < 5 {
		t.Error("sensitivity floor violated")
	}
}

func TestPopulationSpread(t *testing.T) {
	// Fig. 6b: per-sensor sensitivity varies (10-30 mV/bit band). Build a
	// population and check spread without exceeding the band.
	cfg := DefaultConfig(vf.Default())
	r := rng.New(9, "population")
	minS, maxS := math.Inf(1), math.Inf(-1)
	for i := 0; i < 200; i++ {
		s := New(cfg, r.Split(string(rune('a'+i%26))+"x"))
		v := s.MVPerBit(4200)
		minS = math.Min(minS, v)
		maxS = math.Max(maxS, v)
	}
	if maxS-minS < 3 {
		t.Errorf("population spread too tight: [%v, %v]", minS, maxS)
	}
	if minS < 10 || maxS > 30 {
		t.Errorf("population outside Fig. 6b band: [%v, %v]", minS, maxS)
	}
}

func TestVoltageFromValueInvertsMapping(t *testing.T) {
	// §4.1 methodology: CPM output converts back to on-chip voltage within
	// quantization error (±half a bit plus read noise).
	cfg := DefaultConfig(vf.Default())
	cfg.NoiseMV = 0
	s := New(cfg, rng.New(11, "invert"))
	for _, v := range []units.Millivolt{1050, 1100, 1150, 1200} {
		val := s.Value(v, 4200)
		if val == 0 || val == MaxValue {
			continue // saturated, not invertible
		}
		est := s.VoltageFromValue(val, 4200)
		if math.Abs(float64(est-v)) > s.MVPerBit(4200)/2+1e-9 {
			t.Errorf("inversion at %v: estimated %v (err > half bit)", v, est)
		}
	}
}

func TestStickyTracksMinimum(t *testing.T) {
	s := quietSensor(t, 12)
	if _, ok := s.Sticky(); ok {
		t.Fatal("fresh sensor should have no sticky observation")
	}
	s.Value(1250, 4200) // high margin
	s.Value(1100, 4200) // droop
	s.Value(1250, 4200) // recovered
	min, ok := s.Sticky()
	if !ok {
		t.Fatal("sticky missing")
	}
	direct := quietSensor(t, 12).Value(1100, 4200)
	if min != direct {
		t.Errorf("sticky = %d, want the droop reading %d", min, direct)
	}
	s.StickyReset()
	if _, ok := s.Sticky(); ok {
		t.Error("sticky not cleared")
	}
}

func TestDeadSensorReadsWorstCase(t *testing.T) {
	s := quietSensor(t, 13)
	s.Kill()
	if !s.Dead() {
		t.Fatal("Dead() false after Kill")
	}
	if got := s.Value(1250, 4200); got != 0 {
		t.Errorf("dead sensor read %d, want 0", got)
	}
	if min, ok := s.Sticky(); !ok || min != 0 {
		t.Errorf("dead sensor sticky = %d, %v", min, ok)
	}
}

func TestReadNoiseBounded(t *testing.T) {
	cfg := DefaultConfig(vf.Default())
	s := New(cfg, rng.New(14, "noise"))
	v := units.Millivolt(1200)
	counts := map[int]int{}
	for i := 0; i < 2000; i++ {
		counts[s.Value(v, 4200)]++
	}
	if len(counts) < 1 || len(counts) > 4 {
		t.Errorf("read noise produced %d distinct values, want a narrow band", len(counts))
	}
}

func TestNewPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for nil rng")
			}
		}()
		New(DefaultConfig(vf.Default()), nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for bad sensitivity")
			}
		}()
		cfg := DefaultConfig(vf.Default())
		cfg.MeanMVPerBit = 0
		New(cfg, rng.New(1, "x"))
	}()
}
