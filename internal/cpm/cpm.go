// Package cpm models the POWER7+ critical path monitors: per-core timing
// margin sensors built from synthetic delay paths feeding a 12-position
// edge detector (paper §2.2, Fig. 2b).
//
// Each cycle an edge is launched through the synthetic paths; the position
// it reaches in the edge detector by the next clock edge is the CPM output,
// an integer 0..11. More supply voltage (at fixed frequency) means faster
// propagation and a higher output; higher frequency (at fixed voltage)
// means less cycle time and a lower output. The paper calibrates ~21 mV per
// CPM bit at peak frequency (Fig. 6a) with 10-30 mV/bit spread across
// sensors and frequencies (Fig. 6b), which this model reproduces through
// per-sensor process-variation parameters.
package cpm

import (
	"fmt"
	"math"

	"agsim/internal/rng"
	"agsim/internal/units"
	"agsim/internal/vf"
)

// Positions is the number of edge-detector positions (a 12-bit detector).
const Positions = 12

// MaxValue is the highest CPM output.
const MaxValue = Positions - 1

// CalibTarget is the output value the calibration procedure aims each CPM
// at; with adaptive guardbanding active the control loop holds the worst
// CPM here (paper §4.1: "CPMs typically hover around an output value of 2").
const CalibTarget = 2

// Sensor is one critical path monitor.
type Sensor struct {
	law vf.Law

	// mvPerBitNom is this sensor's millivolts of supply slack per detector
	// position at the nominal peak frequency; ~21 mV on average with
	// process-variation spread across sensors.
	mvPerBitNom float64

	// pathOffsetMV shifts this sensor's synthetic path speed relative to
	// the chip's true critical path (calibration error + local process
	// variation). Positive means the sensor is pessimistic.
	pathOffsetMV float64

	// noiseMV scales the measurement noise; noiseOffsetMV is the held
	// noise realization, redrawn once per sticky window (at StickyReset)
	// rather than per read. At the millisecond step every read inside a
	// window sees essentially the same electrical state anyway, and a
	// per-window draw makes the read sequence independent of how many
	// reads happen in the window — which is what lets settled chips skip
	// reads entirely during macro-steps without perturbing the RNG stream.
	noiseMV       float64
	noiseOffsetMV float64

	r *rng.Source

	// calib is the construction-time source the calibration parameters
	// were drawn from, retained so Reset can rewind the sensor to exactly
	// the state New would produce without allocating new streams.
	calib *rng.Source

	// dead simulates a failed sensor for fail-safe testing: it always
	// outputs 0 (worst case), which a correct controller treats as "no
	// margin" and refuses to undervolt on.
	dead bool

	stickyMin int
	hasSticky bool
}

// Config controls sensor construction.
type Config struct {
	Law vf.Law
	// MeanMVPerBit is the population mean sensitivity at peak frequency
	// (paper: ~21 mV/bit).
	MeanMVPerBit float64
	// MVPerBitSpread is the fractional process-variation spread of
	// sensitivity across sensors (Fig. 6b shows roughly ±25%).
	MVPerBitSpread float64
	// PathOffsetSpreadMV is the standard deviation of per-sensor path
	// calibration error.
	PathOffsetSpreadMV float64
	// NoiseMV is per-read measurement noise.
	NoiseMV float64
}

// DefaultConfig returns the Fig. 6 calibration.
func DefaultConfig(law vf.Law) Config {
	return Config{
		Law:                law,
		MeanMVPerBit:       21,
		MVPerBitSpread:     0.22,
		PathOffsetSpreadMV: 4,
		NoiseMV:            1.5,
	}
}

// New creates one sensor with parameters drawn from the population
// distribution in cfg using r (must not be nil: sensors are always
// instantiated with process variation, a zero-variation chip hides
// calibration bugs).
func New(cfg Config, r *rng.Source) *Sensor {
	if r == nil {
		panic("cpm: nil randomness source")
	}
	if cfg.MeanMVPerBit <= 0 {
		panic(fmt.Sprintf("cpm: non-positive MeanMVPerBit %v", cfg.MeanMVPerBit))
	}
	spread := cfg.MVPerBitSpread
	mvPerBit := cfg.MeanMVPerBit * (1 + r.Uniform(-spread, spread))
	s := &Sensor{
		law:          cfg.Law,
		mvPerBitNom:  mvPerBit,
		pathOffsetMV: r.Normal(0, cfg.PathOffsetSpreadMV),
		noiseMV:      cfg.NoiseMV,
		r:            r.Split("reads"),
		calib:        r,
	}
	s.noiseOffsetMV = s.r.Normal(0, s.noiseMV)
	return s
}

// Reset rewinds the sensor to the state New(cfg, r) produces, where the
// caller has already rewound the retained calibration source (via
// rng.SplitInto from the chip's reseeded root hierarchy) to r's fresh
// state. The draw order replicates New exactly — sensitivity, path
// offset, the "reads" child split, then the first held noise realization
// — so pooled and fresh sensors emit bit-identical read sequences.
func (s *Sensor) Reset(cfg Config) {
	if cfg.MeanMVPerBit <= 0 {
		panic(fmt.Sprintf("cpm: non-positive MeanMVPerBit %v", cfg.MeanMVPerBit))
	}
	spread := cfg.MVPerBitSpread
	s.law = cfg.Law
	s.mvPerBitNom = cfg.MeanMVPerBit * (1 + s.calib.Uniform(-spread, spread))
	s.pathOffsetMV = s.calib.Normal(0, cfg.PathOffsetSpreadMV)
	s.noiseMV = cfg.NoiseMV
	s.calib.SplitInto(s.r, "reads")
	s.noiseOffsetMV = s.r.Normal(0, s.noiseMV)
	s.dead = false
	s.stickyMin = 0
	s.hasSticky = false
}

// CalibSource exposes the retained calibration source so the chip's reset
// path can rewind it in place before calling Reset.
func (s *Sensor) CalibSource() *rng.Source { return s.calib }

// MVPerBit returns the sensor's sensitivity at frequency f. Delay elements
// are a fixed fraction of the cycle, so the voltage worth of one detector
// position scales with cycle time pressure: faster clocks leave fewer
// millivolts per position.
func (s *Sensor) MVPerBit(f units.Megahertz) float64 {
	scale := float64(f) / float64(s.law.FNom)
	v := s.mvPerBitNom * scale
	// Sensitivity cannot collapse below a physical floor.
	return math.Max(v, 5)
}

// Value returns the CPM output for on-chip voltage v at frequency f.
// The mapping is the affine law Fig. 6a measures: the calibration target
// position corresponds to the residual margin above the circuit's V_req,
// and each additional MVPerBit of slack moves the edge one position.
func (s *Sensor) Value(v units.Millivolt, f units.Megahertz) int {
	if s.dead {
		s.observeSticky(0)
		return 0
	}
	marginMV := float64(s.law.MarginMV(v, f)) - float64(s.law.ResidualMV) + s.pathOffsetMV
	marginMV += s.noiseOffsetMV
	raw := CalibTarget + int(math.Round(marginMV/s.MVPerBit(f)))
	if raw < 0 {
		raw = 0
	}
	if raw > MaxValue {
		raw = MaxValue
	}
	s.observeSticky(raw)
	return raw
}

// DetMarginMV returns the deterministic component of a read at voltage v
// and frequency f — everything in Value except the held noise realization.
// The fast-forward tick path precomputes it once per frozen span: the
// electricals don't move between windows, so only the per-window noise
// redraw changes what a read returns.
func (s *Sensor) DetMarginMV(v units.Millivolt, f units.Megahertz) float64 {
	return float64(s.law.MarginMV(v, f)) - float64(s.law.ResidualMV) + s.pathOffsetMV
}

func (s *Sensor) observeSticky(v int) {
	if !s.hasSticky || v < s.stickyMin {
		s.stickyMin = v
		s.hasSticky = true
	}
}

// Sticky returns the minimum output observed since the last StickyReset
// (the paper's sticky-mode AMESTER read: "the worst-case, i.e. smallest,
// output of each CPM during the past 32 ms"). The second result reports
// whether any observation occurred.
func (s *Sensor) Sticky() (int, bool) {
	return s.stickyMin, s.hasSticky
}

// StickyReset clears the sticky latch and redraws the held measurement
// noise for the next window (the firmware reads stickies once per 32 ms
// telemetry window, so this pins one noise realization per window).
func (s *Sensor) StickyReset() {
	s.hasSticky = false
	s.stickyMin = 0
	s.noiseOffsetMV = s.r.Normal(0, s.noiseMV)
}

// ClearSticky clears the sticky latch without redrawing the held noise.
// The fast-forward tick path uses it for sensors whose reads provably
// cannot reach the chip-wide minimum this span: their window draws are
// skipped and their noise stream left untouched.
func (s *Sensor) ClearSticky() {
	s.hasSticky = false
	s.stickyMin = 0
}

// BatchState exposes the calibration and window state the batched stepping
// engine gathers into its structure-of-arrays mirror: the nominal
// sensitivity, path offset, held noise realization, dead flag, and sticky
// latch. The engine replicates Value's arithmetic on these exactly.
func (s *Sensor) BatchState() (mvPerBitNom, pathOffsetMV, noiseOffsetMV float64, dead bool, stickyMin int, hasSticky bool) {
	return s.mvPerBitNom, s.pathOffsetMV, s.noiseOffsetMV, s.dead, s.stickyMin, s.hasSticky
}

// NoiseOffsetMV returns the held per-window noise realization; the batched
// engine re-reads it after each StickyReset redraw.
func (s *Sensor) NoiseOffsetMV() float64 { return s.noiseOffsetMV }

// RestoreSticky overwrites the sticky latch — the batched engine's scatter
// path, writing back the window minimum its mirrored reads accumulated.
func (s *Sensor) RestoreSticky(stickyMin int, hasSticky bool) {
	s.stickyMin = stickyMin
	s.hasSticky = hasSticky
}

// Kill marks the sensor failed (stuck at worst-case output).
func (s *Sensor) Kill() { s.dead = true }

// Dead reports whether the sensor has been killed.
func (s *Sensor) Dead() bool { return s.dead }

// VoltageFromValue inverts the sensor mapping: given an observed output at
// frequency f, estimate the on-chip voltage. This is the paper's §4.1
// methodology of using CPMs as on-chip voltage "performance counters";
// the estimate carries the sensor's quantization (±half a bit).
func (s *Sensor) VoltageFromValue(value int, f units.Megahertz) units.Millivolt {
	marginMV := float64(value-CalibTarget)*s.MVPerBit(f) - s.pathOffsetMV
	return s.law.VReq(f) + s.law.ResidualMV + units.Millivolt(marginMV)
}
