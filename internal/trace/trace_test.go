package trace

import (
	"strings"
	"testing"
)

func TestSeriesBasics(t *testing.T) {
	f := NewFigure("fig")
	s := f.NewSeries("raytrace", "cores", "power")
	s.Add(1, 13)
	s.Add(8, 3)
	if y, ok := s.YAt(8); !ok || y != 3 {
		t.Errorf("YAt(8) = %v, %v", y, ok)
	}
	if _, ok := s.YAt(4); ok {
		t.Error("YAt(4) should be missing")
	}
	if got := s.Ys(); len(got) != 2 || got[0] != 13 || got[1] != 3 {
		t.Errorf("Ys = %v", got)
	}
	if got := s.Xs(); len(got) != 2 || got[0] != 1 || got[1] != 8 {
		t.Errorf("Xs = %v", got)
	}
	if f.Lookup("raytrace") != s {
		t.Error("Lookup failed")
	}
	if f.Lookup("nope") != nil {
		t.Error("Lookup of missing series should be nil")
	}
}

func TestWriteCSV(t *testing.T) {
	f := NewFigure("fig")
	a := f.NewSeries("a", "x", "y")
	b := f.NewSeries("b,quoted", "x", "y")
	a.Add(1, 10)
	a.Add(2, 20)
	b.Add(2, 200)
	var sb strings.Builder
	if err := f.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "x,a,\"b,quoted\"\n1,10,\n2,20,200\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("Fig14", "base W", "llb W", "energy %")
	tb.AddRow("lu_cb", 130, 113.5, 12.7)
	tb.AddRow("radix", 70, 72, 103)
	if r, ok := tb.Row("radix"); !ok || r.Values[2] != 103 {
		t.Errorf("Row = %+v, %v", r, ok)
	}
	if _, ok := tb.Row("nope"); ok {
		t.Error("missing row should not be found")
	}
	col := tb.Column("energy %")
	if len(col) != 2 || col[0] != 12.7 || col[1] != 103 {
		t.Errorf("Column = %v", col)
	}
}

func TestTableAddRowPanicsOnArity(t *testing.T) {
	tb := NewTable("t", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tb.AddRow("x", 1)
}

func TestTableColumnPanicsOnMissing(t *testing.T) {
	tb := NewTable("t", "a")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tb.Column("zzz")
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("title", "c1")
	tb.AddRow("row", 1.5)
	var text, md strings.Builder
	if err := tb.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "title") || !strings.Contains(text.String(), "1.500") {
		t.Errorf("text output missing content: %q", text.String())
	}
	if err := tb.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "| row | 1.500 |") {
		t.Errorf("markdown output missing row: %q", md.String())
	}
}
