// Package trace records named time series produced by experiments and
// renders them as CSV or aligned text tables.
//
// Every figure reproduction emits a Series (one line in the paper's plot) or
// a Table (a grid of rows); cmd/agsim prints them and EXPERIMENTS.md embeds
// them. Keeping the rendering here means experiment drivers only produce
// numbers.
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Point is a single (x, y) sample.
type Point struct {
	X, Y float64
}

// Series is a named sequence of points, e.g. "raytrace power saving (%) vs
// active cores".
type Series struct {
	Name   string
	XLabel string
	YLabel string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.Points = append(s.Points, Point{X: x, Y: y})
}

// YAt returns the y value for the first point with the given x and whether
// one exists.
func (s *Series) YAt(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// Ys returns the y values in point order.
func (s *Series) Ys() []float64 {
	ys := make([]float64, len(s.Points))
	for i, p := range s.Points {
		ys[i] = p.Y
	}
	return ys
}

// Xs returns the x values in point order.
func (s *Series) Xs() []float64 {
	xs := make([]float64, len(s.Points))
	for i, p := range s.Points {
		xs[i] = p.X
	}
	return xs
}

// Figure is a collection of series sharing axes, mirroring one paper figure
// or subplot.
type Figure struct {
	Title  string
	Series []*Series
}

// NewFigure creates an empty figure.
func NewFigure(title string) *Figure { return &Figure{Title: title} }

// NewSeries creates, registers and returns a new series on the figure.
func (f *Figure) NewSeries(name, xlabel, ylabel string) *Series {
	s := &Series{Name: name, XLabel: xlabel, YLabel: ylabel}
	f.Series = append(f.Series, s)
	return s
}

// Bounds returns the figure's data extent across every series plus the
// total point count. With no points the extents are ±Inf and count 0;
// renderers should check count before trusting the extents.
func (f *Figure) Bounds() (xmin, xmax, ymin, ymax float64, points int) {
	xmin, xmax = math.Inf(1), math.Inf(-1)
	ymin, ymax = math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for _, p := range s.Points {
			xmin, xmax = math.Min(xmin, p.X), math.Max(xmax, p.X)
			ymin, ymax = math.Min(ymin, p.Y), math.Max(ymax, p.Y)
			points++
		}
	}
	return xmin, xmax, ymin, ymax, points
}

// Lookup returns the series with the given name, or nil.
func (f *Figure) Lookup(name string) *Series {
	for _, s := range f.Series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// WriteCSV renders the figure with one column per series, joined on x.
// Missing values render as empty cells.
func (f *Figure) WriteCSV(w io.Writer) error {
	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)

	header := []string{"x"}
	for _, s := range f.Series {
		header = append(header, csvEscape(s.Name))
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for _, x := range sorted {
		row := []string{fmt.Sprintf("%g", x)}
		for _, s := range f.Series {
			if y, ok := s.YAt(x); ok {
				row = append(row, fmt.Sprintf("%g", y))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Table is a labelled grid of values used for per-benchmark results like
// Fig. 14.
type Table struct {
	Title   string
	Columns []string
	Rows    []TableRow
}

// TableRow is one labelled row of values.
type TableRow struct {
	Label  string
	Values []float64
}

// NewTable creates a table with the given column headers (not counting the
// row label column).
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row. The number of values must match the column count;
// a mismatch is a programming error and panics.
func (t *Table) AddRow(label string, values ...float64) {
	if len(values) != len(t.Columns) {
		panic(fmt.Sprintf("trace: row %q has %d values, table %q has %d columns",
			label, len(values), t.Title, len(t.Columns)))
	}
	t.Rows = append(t.Rows, TableRow{Label: label, Values: values})
}

// Row returns the row with the given label and whether it exists.
func (t *Table) Row(label string) (TableRow, bool) {
	for _, r := range t.Rows {
		if r.Label == label {
			return r, true
		}
	}
	return TableRow{}, false
}

// Column returns all values of the named column. It panics if the column
// does not exist.
func (t *Table) Column(name string) []float64 {
	idx := -1
	for i, c := range t.Columns {
		if c == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		panic(fmt.Sprintf("trace: table %q has no column %q", t.Title, name))
	}
	vals := make([]float64, len(t.Rows))
	for i, r := range t.Rows {
		vals[i] = r.Values[idx]
	}
	return vals
}

// WriteText renders the table as aligned text.
func (t *Table) WriteText(w io.Writer) error {
	labelW := len("benchmark")
	for _, r := range t.Rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-*s", labelW+2, "benchmark"); err != nil {
		return err
	}
	for _, c := range t.Columns {
		if _, err := fmt.Fprintf(w, "%14s", c); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if _, err := fmt.Fprintf(w, "%-*s", labelW+2, r.Label); err != nil {
			return err
		}
		for _, v := range r.Values {
			if _, err := fmt.Fprintf(w, "%14.3f", v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteMarkdown renders the table as a GitHub-flavored markdown table.
func (t *Table) WriteMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "| benchmark |"); err != nil {
		return err
	}
	for _, c := range t.Columns {
		if _, err := fmt.Fprintf(w, " %s |", c); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "|---|%s\n", strings.Repeat("---|", len(t.Columns))); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if _, err := fmt.Fprintf(w, "| %s |", r.Label); err != nil {
			return err
		}
		for _, v := range r.Values {
			if _, err := fmt.Fprintf(w, " %.3f |", v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
