package trace

import (
	"strings"
	"testing"
)

func TestRenderASCIIBasics(t *testing.T) {
	f := NewFigure("power vs cores")
	a := f.NewSeries("static", "cores", "W")
	b := f.NewSeries("adaptive", "cores", "W")
	for n := 1; n <= 8; n++ {
		a.Add(float64(n), 50+10*float64(n))
		b.Add(float64(n), 45+9.5*float64(n))
	}
	var sb strings.Builder
	if err := f.RenderASCII(&sb, 40, 10); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "power vs cores") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "* static") || !strings.Contains(out, "o adaptive") {
		t.Errorf("missing legend: %q", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("missing plotted glyphs")
	}
	// 10 grid rows plus title, x-axis and legend.
	if lines := strings.Count(out, "\n"); lines != 13 {
		t.Errorf("line count = %d", lines)
	}
}

func TestRenderASCIIEmpty(t *testing.T) {
	f := NewFigure("empty")
	f.NewSeries("s", "x", "y")
	var sb strings.Builder
	if err := f.RenderASCII(&sb, 40, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no data") {
		t.Errorf("empty figure rendering: %q", sb.String())
	}
}

func TestRenderASCIIDegenerateRanges(t *testing.T) {
	f := NewFigure("flat")
	s := f.NewSeries("s", "x", "y")
	s.Add(5, 7) // single point: zero x and y ranges
	var sb strings.Builder
	if err := f.RenderASCII(&sb, 5, 2); err != nil { // tiny sizes get clamped
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "*") {
		t.Error("single point not plotted")
	}
}
