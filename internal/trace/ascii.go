package trace

import (
	"fmt"
	"io"
	"strings"
)

// RenderASCII draws the figure as a text chart: one glyph per series,
// points mapped onto a width×height grid with axis annotations. It is the
// terminal rendering cmd/agsim uses so figure shapes are inspectable
// without leaving the shell.
func (f *Figure) RenderASCII(w io.Writer, width, height int) error {
	if width < 20 {
		width = 20
	}
	if height < 6 {
		height = 6
	}
	xmin, xmax, ymin, ymax, points := f.Bounds()
	if points == 0 {
		_, err := fmt.Fprintf(w, "%s\n(no data)\n", f.Title)
		return err
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// A little vertical headroom keeps extreme points off the frame.
	pad := (ymax - ymin) * 0.05
	ymin -= pad
	ymax += pad

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	glyphs := []byte("*o+x#@%&")
	for si, s := range f.Series {
		g := glyphs[si%len(glyphs)]
		for _, p := range s.Points {
			col := int((p.X - xmin) / (xmax - xmin) * float64(width-1))
			row := height - 1 - int((p.Y-ymin)/(ymax-ymin)*float64(height-1))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = g
			}
		}
	}

	if _, err := fmt.Fprintf(w, "%s\n", f.Title); err != nil {
		return err
	}
	for i, row := range grid {
		label := "          "
		switch i {
		case 0:
			label = fmt.Sprintf("%9.4g ", ymax)
		case height - 1:
			label = fmt.Sprintf("%9.4g ", ymin)
		}
		if _, err := fmt.Fprintf(w, "%s|%s|\n", label, row); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%9s %-*.4g%*.4g\n", "", width/2, xmin, width-width/2, xmax); err != nil {
		return err
	}
	var legend []string
	for si, s := range f.Series {
		legend = append(legend, fmt.Sprintf("%c %s", glyphs[si%len(glyphs)], s.Name))
	}
	_, err := fmt.Fprintf(w, "%9s %s\n", "", strings.Join(legend, "   "))
	return err
}
