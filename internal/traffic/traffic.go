// Package traffic is the open-loop request layer of the fleet-scale
// serving experiments: a deterministic arrival process per node (Poisson
// base rate shaped by a diurnal envelope and burst episodes), per-request
// service demands, and admission into per-node FIFO run queues whose
// latency and shed accounting feed the paper's system-level QoS questions
// (tail latency and Joules/query under adaptive guardbanding).
//
// Determinism contract — the same one the simulation layers obey:
//
//   - every node owns named RNG streams derived from (Seed, node index),
//     so which goroutine processes a node cannot change a single draw;
//   - arrivals are generated as a continuous stream (each accepted arrival
//     eagerly draws the next one), so chopping simulated time into epochs
//     of any granularity — the macro lane's wide spans or the exact lane's
//     1 ms steps — consumes the identical draw sequence;
//   - queueing is resolved analytically at admission time (finish = max
//     (arrival, backlog) + demand/capacity), so latencies are a pure
//     function of the arrival stream and the per-epoch capacity samples,
//     not of scheduler interleaving.
//
// Latency percentiles come from fixed-bucket histograms in the exact
// geometry of obs.HRequestLatencySec: integer counts merged in node index
// order, read back with in-bucket linear interpolation — bit-identical at
// any worker count.
package traffic

import (
	"fmt"
	"math"
	"runtime"

	"agsim/internal/obs"
	"agsim/internal/parallel"
	"agsim/internal/rng"
)

// Config calibrates the request stream offered to a fleet.
type Config struct {
	// Nodes is the number of per-node generators (one run queue each).
	Nodes int
	// RatePerSec is the base mean arrival rate per node; the diurnal and
	// burst envelopes modulate it.
	RatePerSec float64
	// DemandGInst is the mean per-request instruction footprint; service
	// time is demand / node capacity (GInst per second). Demands are
	// exponentially distributed around the mean (search-style traffic has
	// heavy service-time variance).
	DemandGInst float64
	// DiurnalAmplitude in [0,1) shapes the rate as
	// 1 + A*sin(2*pi*t/DiurnalPeriodSec) — the load curve of a day,
	// compressed to simulation scale.
	DiurnalAmplitude float64
	// DiurnalPeriodSec is the envelope period; ignored when the amplitude
	// is zero.
	DiurnalPeriodSec float64
	// BurstRatePerSec is the Poisson rate of burst-episode starts per
	// node; zero disables episodes (and leaves the episode stream
	// untouched, so enabling bursts never shifts the arrival draws of a
	// burst-free configuration).
	BurstRatePerSec float64
	// BurstMeanSec is the mean episode duration (exponential).
	BurstMeanSec float64
	// BurstFactor multiplies the rate inside an episode (>= 1).
	BurstFactor float64
	// QueueCap bounds each node's run queue (waiting + in service);
	// arrivals beyond it are shed and counted, never silently lost.
	QueueCap int
	// Seed roots every per-node stream.
	Seed uint64
	// Recorder, when non-nil, receives per-node served/dropped counters
	// and the request-latency histogram; each node gets its own shard
	// (created here, deterministically, in index order) so concurrent
	// epochs merge independent of scheduling.
	Recorder *obs.Recorder
	// Probe, when non-nil, observes every request in admission order:
	// (node, id, arrival, latency, dropped). Latency is 0 for dropped
	// requests. Probed generators must be driven serially — the probe is
	// the one seam that sees nodes interleaved.
	Probe func(node int, id uint64, arrivalSec, latencySec float64, dropped bool)
}

// DefaultConfig returns a serving-style calibration: ~120 requests/s/node
// of 0.4 GInst each, a gentle diurnal swing with occasional 1.6x bursts,
// and a 256-deep run queue.
func DefaultConfig(nodes int, seed uint64) Config {
	return Config{
		Nodes:            nodes,
		RatePerSec:       120,
		DemandGInst:      0.4,
		DiurnalAmplitude: 0.15,
		DiurnalPeriodSec: 600,
		BurstRatePerSec:  1.0 / 120,
		BurstMeanSec:     8,
		BurstFactor:      1.6,
		QueueCap:         256,
		Seed:             seed,
	}
}

// Validate reports the first nonsensical parameter, or nil.
func (c Config) Validate() error {
	switch {
	case c.Nodes < 1:
		return fmt.Errorf("traffic: need at least one node, got %d", c.Nodes)
	case c.RatePerSec <= 0:
		return fmt.Errorf("traffic: non-positive arrival rate %v", c.RatePerSec)
	case c.DemandGInst <= 0:
		return fmt.Errorf("traffic: non-positive demand %v", c.DemandGInst)
	case c.DiurnalAmplitude < 0 || c.DiurnalAmplitude >= 1:
		return fmt.Errorf("traffic: diurnal amplitude %v out of [0,1)", c.DiurnalAmplitude)
	case c.DiurnalAmplitude > 0 && c.DiurnalPeriodSec <= 0:
		return fmt.Errorf("traffic: diurnal period %v with amplitude %v", c.DiurnalPeriodSec, c.DiurnalAmplitude)
	case c.BurstRatePerSec < 0:
		return fmt.Errorf("traffic: negative burst rate %v", c.BurstRatePerSec)
	case c.BurstRatePerSec > 0 && (c.BurstMeanSec <= 0 || c.BurstFactor < 1):
		return fmt.Errorf("traffic: burst episodes need positive duration and factor >= 1 (got %v s, %vx)", c.BurstMeanSec, c.BurstFactor)
	case c.QueueCap < 1:
		return fmt.Errorf("traffic: queue cap %d < 1", c.QueueCap)
	}
	return nil
}

// node is one per-node generator: its streams, its arrival look-ahead, its
// burst schedule, and its run queue (a ring of absolute finish times in
// FIFO = finish order).
type node struct {
	arrivals *rng.Source // inter-arrival thinning + demand draws
	bursts   *rng.Source // episode schedule (separate stream: toggling bursts must not shift arrivals)

	// nextArrival/nextDemand are the eagerly drawn look-ahead: consuming
	// them and drawing the next pair keeps the draw sequence independent
	// of epoch granularity.
	nextArrival float64
	nextDemand  float64

	// Current-or-next burst episode [burstStart, burstEnd).
	burstStart, burstEnd float64

	// freeAt is the absolute time the node drains its admitted backlog.
	freeAt float64

	// fin is the run-queue ring: absolute finish times of admitted
	// requests, oldest at head. FIFO service at a single capacity makes
	// finish times monotone, so depth-at-arrival is a head pop.
	fin   []float64
	head  int
	depth int

	seq       uint64
	completed uint64
	dropped   uint64
	sumLat    float64
	maxLat    float64
	hist      []uint64

	rec *obs.Recorder
	src int32
}

// Generator drives every node's request stream against per-epoch capacity
// samples.
type Generator struct {
	cfg     Config
	rateMax float64
	now     float64
	bounds  []float64
	nodes   []node

	// epoch fan-out state (set before ForEach so the per-node closure is
	// allocated once, not per epoch).
	epochDt   float64
	epochGIPS []float64
	nodeFn    func(int)
}

// New builds a generator; it panics on an invalid configuration (request
// streams are constructed from literals, not user input).
func New(cfg Config) *Generator {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	g := &Generator{cfg: cfg, bounds: obs.HistBuckets(obs.HRequestLatencySec)}
	g.rateMax = cfg.RatePerSec * (1 + cfg.DiurnalAmplitude)
	if cfg.BurstRatePerSec > 0 {
		g.rateMax *= cfg.BurstFactor
	}
	g.nodes = make([]node, cfg.Nodes)
	for i := range g.nodes {
		nd := &g.nodes[i]
		name := fmt.Sprintf("node%04d", i)
		nd.arrivals = rng.New(cfg.Seed, "traffic/"+name+"/arrivals")
		nd.bursts = rng.New(cfg.Seed, "traffic/"+name+"/bursts")
		nd.fin = make([]float64, cfg.QueueCap)
		nd.hist = make([]uint64, len(g.bounds)+1)
		nd.rec = cfg.Recorder.Shard(name)
		nd.src = nd.rec.Source("traffic")
		g.drawNext(nd)
	}
	g.nodeFn = g.epochNode
	return g
}

// rateAt returns the instantaneous arrival rate at time t, advancing the
// node's burst schedule. Callers query monotonically increasing times (the
// thinning candidates), which the lazy schedule generation relies on.
func (g *Generator) rateAt(nd *node, t float64) float64 {
	rate := g.cfg.RatePerSec
	if a := g.cfg.DiurnalAmplitude; a > 0 {
		rate *= 1 + a*math.Sin(2*math.Pi*t/g.cfg.DiurnalPeriodSec)
	}
	if g.cfg.BurstRatePerSec > 0 {
		for t >= nd.burstEnd {
			nd.burstStart = nd.burstEnd + nd.bursts.Exp(1/g.cfg.BurstRatePerSec)
			nd.burstEnd = nd.burstStart + nd.bursts.Exp(g.cfg.BurstMeanSec)
		}
		if t >= nd.burstStart {
			rate *= g.cfg.BurstFactor
		}
	}
	return rate
}

// drawNext consumes the node's current look-ahead and draws the next
// (arrival, demand) pair by thinning against the rate ceiling.
func (g *Generator) drawNext(nd *node) {
	t := nd.nextArrival
	for {
		t += nd.arrivals.Exp(1 / g.rateMax)
		if nd.arrivals.Float64()*g.rateMax <= g.rateAt(nd, t) {
			break
		}
	}
	nd.nextArrival = t
	nd.nextDemand = nd.arrivals.Exp(g.cfg.DemandGInst)
}

// RequestID composes the deterministic id of node n's seq-th request.
func RequestID(n int, seq uint64) uint64 { return uint64(n)<<32 | seq }

// epochNode processes node i's arrivals in [now, now+epochDt) at the
// capacity sampled for this epoch. Allocation-free.
func (g *Generator) epochNode(i int) {
	nd := &g.nodes[i]
	gips := g.epochGIPS[i]
	if gips <= 0 {
		panic(fmt.Sprintf("traffic: non-positive capacity %v for node %d", gips, i))
	}
	end := g.now + g.epochDt
	cap := len(nd.fin)
	for nd.nextArrival < end {
		arrival := nd.nextArrival
		demand := nd.nextDemand
		g.drawNext(nd)
		id := RequestID(i, nd.seq)
		nd.seq++

		// Retire queue entries that finished before this arrival.
		for nd.depth > 0 && nd.fin[nd.head] <= arrival {
			nd.head++
			if nd.head == cap {
				nd.head = 0
			}
			nd.depth--
		}
		if nd.depth >= cap {
			nd.dropped++
			nd.rec.Inc(nd.src, obs.CRequestsDropped)
			if g.cfg.Probe != nil {
				g.cfg.Probe(i, id, arrival, 0, true)
			}
			continue
		}

		start := arrival
		if nd.freeAt > start {
			start = nd.freeAt
		}
		finish := start + demand/gips
		nd.freeAt = finish
		tail := nd.head + nd.depth
		if tail >= cap {
			tail -= cap
		}
		nd.fin[tail] = finish
		nd.depth++

		lat := finish - arrival
		nd.completed++
		nd.sumLat += lat
		if lat > nd.maxLat {
			nd.maxLat = lat
		}
		b := 0
		for b < len(g.bounds) && lat > g.bounds[b] {
			b++
		}
		nd.hist[b]++
		nd.rec.Inc(nd.src, obs.CRequestsServed)
		nd.rec.Observe(obs.HRequestLatencySec, lat)
		if g.cfg.Probe != nil {
			g.cfg.Probe(i, id, arrival, lat, false)
		}
	}
}

// Epoch advances every node's request stream by dtSec at the given
// per-node capacities (GInst per second, typically a point read of node
// throughput at the epoch boundary). Nodes are independent, so they fan
// out on the pool; a nil pool runs serially. Per-node results are
// bit-identical either way.
func (g *Generator) Epoch(pool *parallel.Pool, dtSec float64, capacityGIPS []float64) {
	if dtSec <= 0 {
		panic(fmt.Sprintf("traffic: non-positive epoch %v", dtSec))
	}
	if len(capacityGIPS) != len(g.nodes) {
		panic(fmt.Sprintf("traffic: %d capacities for %d nodes", len(capacityGIPS), len(g.nodes)))
	}
	g.epochDt = dtSec
	g.epochGIPS = capacityGIPS
	if pool.Serial() || g.cfg.Probe != nil || runtime.GOMAXPROCS(0) == 1 {
		for i := range g.nodes {
			g.epochNode(i)
		}
	} else {
		parallel.ForEach(pool, len(g.nodes), g.nodeFn)
	}
	g.now += dtSec
}

// Now returns the generator's simulated clock.
func (g *Generator) Now() float64 { return g.now }

// Nodes returns the per-node generator count.
func (g *Generator) Nodes() int { return len(g.nodes) }

// QueueDepth returns node i's run-queue occupancy at the current clock —
// admitted requests that have not finished — without mutating the queue.
// Placement policies (THEAS-style queue-aware picks) read it between
// epochs.
func (g *Generator) QueueDepth(i int) int {
	nd := &g.nodes[i]
	depth := 0
	for k := 0; k < nd.depth; k++ {
		idx := nd.head + k
		if idx >= len(nd.fin) {
			idx -= len(nd.fin)
		}
		if nd.fin[idx] > g.now {
			depth++
		}
	}
	return depth
}

// Summary are the merged request statistics of a run.
type Summary struct {
	Completed uint64
	Dropped   uint64
	MeanSec   float64
	P50Sec    float64
	P95Sec    float64
	P99Sec    float64
	MaxSec    float64
}

// Latency merges every node's accounting in index order and extracts the
// percentiles from the summed fixed-bucket histogram.
func (g *Generator) Latency() Summary {
	merged := make([]uint64, len(g.bounds)+1)
	var s Summary
	var sum float64
	for i := range g.nodes {
		nd := &g.nodes[i]
		s.Completed += nd.completed
		s.Dropped += nd.dropped
		sum += nd.sumLat
		if nd.maxLat > s.MaxSec {
			s.MaxSec = nd.maxLat
		}
		for b, n := range nd.hist {
			merged[b] += n
		}
	}
	if s.Completed > 0 {
		s.MeanSec = sum / float64(s.Completed)
	}
	s.P50Sec = quantile(g.bounds, merged, s.Completed, s.MaxSec, 0.50)
	s.P95Sec = quantile(g.bounds, merged, s.Completed, s.MaxSec, 0.95)
	s.P99Sec = quantile(g.bounds, merged, s.Completed, s.MaxSec, 0.99)
	return s
}

// quantile reads the q-quantile out of a fixed-bucket histogram by linear
// interpolation inside the covering bucket; the overflow bin interpolates
// toward the observed maximum. Integer bucket counts make the result
// bit-identical however the counts were accumulated.
func quantile(bounds []float64, counts []uint64, total uint64, maxSec float64, q float64) float64 {
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	cum := 0.0
	for b, n := range counts {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if next >= target {
			lo := 0.0
			if b > 0 {
				lo = bounds[b-1]
			}
			hi := maxSec
			if b < len(bounds) {
				hi = bounds[b]
			}
			if hi < lo {
				hi = lo
			}
			return lo + (hi-lo)*(target-cum)/float64(n)
		}
		cum = next
	}
	return maxSec
}

// NodeSnapshot is one node's complete generator state for determinism
// tests: identical streams must yield DeepEqual snapshots however the run
// was chopped or fanned out.
type NodeSnapshot struct {
	Seq         uint64
	Completed   uint64
	Dropped     uint64
	SumLatSec   float64
	MaxLatSec   float64
	FreeAtSec   float64
	NextArrival float64
	Hist        []uint64
}

// NodeSnapshot returns node i's snapshot (the histogram is copied).
func (g *Generator) NodeSnapshot(i int) NodeSnapshot {
	nd := &g.nodes[i]
	return NodeSnapshot{
		Seq:         nd.seq,
		Completed:   nd.completed,
		Dropped:     nd.dropped,
		SumLatSec:   nd.sumLat,
		MaxLatSec:   nd.maxLat,
		FreeAtSec:   nd.freeAt,
		NextArrival: nd.nextArrival,
		Hist:        append([]uint64(nil), nd.hist...),
	}
}
