package traffic

import (
	"math"
	"reflect"
	"testing"

	"agsim/internal/obs"
	"agsim/internal/parallel"
)

func flatCaps(nodes int, gips float64) []float64 {
	caps := make([]float64, nodes)
	for i := range caps {
		caps[i] = gips
	}
	return caps
}

// The realized arrival rate should track the configured base rate when the
// envelopes are off.
func TestArrivalRateMatchesConfig(t *testing.T) {
	cfg := DefaultConfig(4, 7)
	cfg.DiurnalAmplitude = 0
	cfg.BurstRatePerSec = 0
	g := New(cfg)
	const dur = 50.0
	for i := 0; i < 10; i++ {
		g.Epoch(nil, dur/10, flatCaps(cfg.Nodes, 100))
	}
	s := g.Latency()
	total := float64(s.Completed + s.Dropped)
	want := cfg.RatePerSec * dur * float64(cfg.Nodes)
	if math.Abs(total-want) > 0.05*want {
		t.Fatalf("realized %v arrivals, want ~%v", total, want)
	}
	if s.Dropped != 0 {
		t.Fatalf("unexpected drops at light load: %d", s.Dropped)
	}
}

// Latencies must be at least the service time and the percentiles ordered.
func TestLatencyOrdering(t *testing.T) {
	g := New(DefaultConfig(2, 11))
	g.Epoch(nil, 20, flatCaps(2, 80))
	s := g.Latency()
	if s.Completed == 0 {
		t.Fatal("no requests served")
	}
	minService := 0.0 // exponential demands can be arbitrarily small
	if s.MeanSec <= minService {
		t.Fatalf("mean latency %v not positive", s.MeanSec)
	}
	if !(s.P50Sec <= s.P95Sec && s.P95Sec <= s.P99Sec && s.P99Sec <= s.MaxSec) {
		t.Fatalf("percentiles out of order: p50=%v p95=%v p99=%v max=%v",
			s.P50Sec, s.P95Sec, s.P99Sec, s.MaxSec)
	}
}

// Chopping the same wall of simulated time into different epoch patterns
// must consume the identical draw sequence: every node snapshot DeepEqual.
func TestEpochChoppingInvariance(t *testing.T) {
	const total = 12.0
	chops := [][]float64{
		{total},
		{0.001, 0.999, 3.0, 8.0},
		{6.0, 6.0},
	}
	fine := make([]float64, 1200)
	for i := range fine {
		fine[i] = 0.01
	}
	chops = append(chops, fine)

	var ref []NodeSnapshot
	for ci, chop := range chops {
		cfg := DefaultConfig(6, 99)
		g := New(cfg)
		caps := flatCaps(cfg.Nodes, 64)
		for _, dt := range chop {
			g.Epoch(nil, dt, caps)
		}
		snaps := make([]NodeSnapshot, cfg.Nodes)
		for i := range snaps {
			snaps[i] = g.NodeSnapshot(i)
		}
		if ci == 0 {
			ref = snaps
			continue
		}
		if !reflect.DeepEqual(snaps, ref) {
			t.Fatalf("chop %d diverged from single-epoch reference", ci)
		}
	}
}

// Worker-count invariance: the per-node streams are owned by the node, so
// fanning epochs out over any pool width is bit-identical to serial.
func TestWorkerCountInvariance(t *testing.T) {
	run := func(workers int) ([]NodeSnapshot, Summary) {
		cfg := DefaultConfig(16, 5)
		g := New(cfg)
		var pool *parallel.Pool
		if workers > 1 {
			pool = parallel.NewPool(workers)
		}
		caps := flatCaps(cfg.Nodes, 72)
		for i := 0; i < 8; i++ {
			g.Epoch(pool, 1.5, caps)
		}
		snaps := make([]NodeSnapshot, cfg.Nodes)
		for i := range snaps {
			snaps[i] = g.NodeSnapshot(i)
		}
		return snaps, g.Latency()
	}
	refSnaps, refSum := run(1)
	for _, w := range []int{4, 8} {
		snaps, sum := run(w)
		if !reflect.DeepEqual(snaps, refSnaps) {
			t.Fatalf("workers=%d node snapshots diverged from serial", w)
		}
		if sum != refSum {
			t.Fatalf("workers=%d summary %+v != serial %+v", w, sum, refSum)
		}
	}
}

// Forced overload: with capacity far below the offered load the queue must
// saturate, shed requests, and account for every arrival exactly.
func TestForcedOverloadAccounting(t *testing.T) {
	cfg := DefaultConfig(3, 21)
	cfg.QueueCap = 16
	g := New(cfg)
	// 120 req/s of 0.4 GInst needs 48 GIPS; offer 5.
	for i := 0; i < 10; i++ {
		g.Epoch(nil, 2, flatCaps(cfg.Nodes, 5))
	}
	s := g.Latency()
	if s.Dropped == 0 {
		t.Fatal("overload produced no drops")
	}
	var seq, served, dropped uint64
	for i := 0; i < cfg.Nodes; i++ {
		ns := g.NodeSnapshot(i)
		seq += ns.Seq
		served += ns.Completed
		dropped += ns.Dropped
		if ns.Completed+ns.Dropped != ns.Seq {
			t.Fatalf("node %d: %d served + %d dropped != %d arrivals",
				i, ns.Completed, ns.Dropped, ns.Seq)
		}
		// Queue never exceeds cap even under sustained overload.
		if d := g.QueueDepth(i); d > cfg.QueueCap {
			t.Fatalf("node %d queue depth %d exceeds cap %d", i, d, cfg.QueueCap)
		}
	}
	if served != s.Completed || dropped != s.Dropped {
		t.Fatalf("summary (%d, %d) != per-node totals (%d, %d)",
			s.Completed, s.Dropped, served, dropped)
	}
	// Served counters are also mirrored into the recorder when attached.
	rec := obs.New("traffic-test", obs.DefaultEventCap)
	cfg2 := cfg
	cfg2.Recorder = rec
	g2 := New(cfg2)
	for i := 0; i < 10; i++ {
		g2.Epoch(nil, 2, flatCaps(cfg.Nodes, 5))
	}
	snap := rec.Snapshot()
	if got := snap.TotalCounter(obs.CRequestsServed); got != s.Completed {
		t.Fatalf("recorder served %d != %d", got, s.Completed)
	}
	if got := snap.TotalCounter(obs.CRequestsDropped); got != s.Dropped {
		t.Fatalf("recorder dropped %d != %d", got, s.Dropped)
	}
}

// Request IDs are deterministic functions of (node, seq).
func TestRequestIDs(t *testing.T) {
	var ids []uint64
	cfg := DefaultConfig(2, 3)
	cfg.Probe = func(node int, id uint64, _, _ float64, _ bool) {
		ids = append(ids, id)
	}
	g := New(cfg)
	g.Epoch(nil, 0.25, flatCaps(2, 100))
	if len(ids) == 0 {
		t.Fatal("probe saw no requests")
	}
	seen := map[uint64]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate request id %#x", id)
		}
		seen[id] = true
	}
	if want := RequestID(1, 0); uint64(1)<<32 != want {
		t.Fatalf("RequestID(1,0) = %#x", want)
	}
}

// The satellite contract spelled out: every arrival timestamp, request id,
// and the merged latency histogram must be identical however simulated
// time is chopped — one wide macro-style epoch vs thousands of 1 ms
// exact-style epochs.
func TestArrivalStreamLaneIdentical(t *testing.T) {
	type event struct {
		id      uint64
		arrival float64
		lat     float64
		dropped bool
	}
	capture := func(chop []float64) (map[int][]event, Summary) {
		events := map[int][]event{}
		cfg := DefaultConfig(4, 31)
		cfg.Probe = func(node int, id uint64, arrivalSec, latencySec float64, dropped bool) {
			events[node] = append(events[node], event{id, arrivalSec, latencySec, dropped})
		}
		g := New(cfg)
		caps := flatCaps(cfg.Nodes, 64)
		for _, dt := range chop {
			g.Epoch(nil, dt, caps)
		}
		return events, g.Latency()
	}

	const total = 8.0
	wide, wideSum := capture([]float64{total})
	fine := make([]float64, 8000)
	for i := range fine {
		fine[i] = 0.001
	}
	fineEvents, fineSum := capture(fine)

	if !reflect.DeepEqual(wide, fineEvents) {
		t.Fatal("per-node (id, arrival, latency) sequences differ between macro- and exact-style chopping")
	}
	if wideSum != fineSum {
		t.Fatalf("latency summaries differ: %+v vs %+v", wideSum, fineSum)
	}
	if len(wide[0]) == 0 {
		t.Fatal("probe captured nothing")
	}
}

// Toggling burst episodes must not shift the base arrival stream's draws:
// bursts consume a separate named stream.
func TestBurstStreamIsolation(t *testing.T) {
	base := DefaultConfig(1, 77)
	base.DiurnalAmplitude = 0
	base.BurstRatePerSec = 0

	burst := base
	burst.BurstRatePerSec = 1.0 / 30
	burst.BurstMeanSec = 4
	burst.BurstFactor = 1.0 // episodes scheduled but rate unchanged

	gBase, gBurst := New(base), New(burst)
	caps := flatCaps(1, 100)
	gBase.Epoch(nil, 30, caps)
	gBurst.Epoch(nil, 30, caps)
	a, b := gBase.NodeSnapshot(0), gBurst.NodeSnapshot(0)
	if a.Seq != b.Seq || a.SumLatSec != b.SumLatSec {
		t.Fatalf("factor-1 burst schedule perturbed arrivals: %+v vs %+v", a, b)
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{},
		{Nodes: 1},
		{Nodes: 1, RatePerSec: 1},
		{Nodes: 1, RatePerSec: 1, DemandGInst: 1, DiurnalAmplitude: 1},
		{Nodes: 1, RatePerSec: 1, DemandGInst: 1, DiurnalAmplitude: 0.5},
		{Nodes: 1, RatePerSec: 1, DemandGInst: 1, BurstRatePerSec: 0.1},
		{Nodes: 1, RatePerSec: 1, DemandGInst: 1, QueueCap: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
	if err := DefaultConfig(8, 1).Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

// The epoch loop must be allocation-free in steady state (serial path).
func TestEpochZeroAlloc(t *testing.T) {
	cfg := DefaultConfig(8, 13)
	g := New(cfg)
	caps := flatCaps(cfg.Nodes, 80)
	g.Epoch(nil, 5, caps) // warm the burst schedules
	allocs := testing.AllocsPerRun(20, func() {
		g.Epoch(nil, 0.5, caps)
	})
	if allocs != 0 {
		t.Fatalf("Epoch allocates %v per call, want 0", allocs)
	}
}
