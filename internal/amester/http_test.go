package amester

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"agsim/internal/obs"
	"agsim/internal/tsdb"
)

// testAPI builds an API over a hand-populated recorder: two sources, a
// power series on each, a droop storm on chip0, and a manifest.
func testAPI(t *testing.T) (*API, *obs.Recorder) {
	t.Helper()
	rec := obs.New("t", 256)
	rec.EnableTimeSeries(tsdb.DefaultSpec())
	a := rec.Source("chip0")
	b := rec.Source("chip1")
	for i := int64(0); i < 40; i++ {
		rec.Series(a, "power_w").Push(i*1000, 100+float64(i))
		rec.Series(b, "power_w").Push(i*1000, 50)
	}
	rec.SetGauge(a, obs.GTimeSec, 1)
	rec.Add(a, obs.CDidtEvents, 200) // 200/s: a critical droop storm
	manifest := obs.NewManifest("t", 7)
	api := NewAPI(APIConfig{
		Recorder: rec,
		Manifest: manifest,
		Mu:       &sync.Mutex{},
		SimTime:  func() float64 { return 1.5 },
	})
	return api, rec
}

func get(t *testing.T, h http.Handler, url string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", url, nil))
	return w
}

func decode(t *testing.T, w *httptest.ResponseRecorder, v any) {
	t.Helper()
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if err := json.Unmarshal(w.Body.Bytes(), v); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, w.Body.String())
	}
}

func TestAPIMetricsAndManifest(t *testing.T) {
	api, _ := testAPI(t)
	h := api.Handler()

	w := get(t, h, "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", w.Code)
	}
	body := w.Body.String()
	for _, want := range []string{"agsim_didt_events_total", "agsim_series_registered", "agsim_shard_events_lost"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}

	var m struct {
		Name       string  `json:"name"`
		SimSeconds float64 `json:"sim_seconds"`
	}
	decode(t, get(t, h, "/manifest"), &m)
	if m.Name != "t" || m.SimSeconds != 1.5 {
		t.Fatalf("manifest %+v", m)
	}
}

func TestAPITimeseries(t *testing.T) {
	api, _ := testAPI(t)
	h := api.Handler()

	// Inventory: one merged name per (source, series) registration.
	var inv struct {
		Series []seriesInfo `json:"series"`
	}
	decode(t, get(t, h, "/timeseries"), &inv)
	if len(inv.Series) != 2 {
		t.Fatalf("inventory %+v, want two power_w rows", inv.Series)
	}
	for _, s := range inv.Series {
		if s.Name != "power_w" || len(s.Spec.Levels) != 3 {
			t.Fatalf("inventory row %+v", s)
		}
	}

	// A named fetch merges both sources: 40 pushes each, same stamps.
	var body seriesBody
	decode(t, get(t, h, "/timeseries?name=power_w"), &body)
	if len(body.Levels) != 3 {
		t.Fatalf("want 3 levels, got %d", len(body.Levels))
	}
	var n int64
	for _, w := range body.Levels[0] {
		n += w.Cnt
	}
	if n != 80 {
		t.Fatalf("finest level holds %d samples, want 80", n)
	}

	// res= narrows to one level.
	decode(t, get(t, h, "/timeseries?name=power_w&res=2"), &body)
	if len(body.Levels) != 1 || body.Spec.Levels[0].WidthUS != 1_024_000 {
		t.Fatalf("res=2 body %+v", body.Spec)
	}

	if w := get(t, h, "/timeseries?name=nope"); w.Code != http.StatusNotFound {
		t.Fatalf("unknown series status %d", w.Code)
	}
	if w := get(t, h, "/timeseries?name=power_w&res=9"); w.Code != http.StatusBadRequest {
		t.Fatalf("bad res status %d", w.Code)
	}
}

func TestAPIHealth(t *testing.T) {
	api, _ := testAPI(t)
	var body struct {
		Status   string          `json:"status"`
		Findings []healthFinding `json:"findings"`
	}
	decode(t, get(t, api.Handler(), "/health"), &body)
	if body.Status != "critical" || len(body.Findings) != 1 {
		t.Fatalf("health %+v", body)
	}
	f := body.Findings[0]
	if f.Detector != "droop-storm" || f.Source != "chip0" || f.Value != 200 {
		t.Fatalf("finding %+v", f)
	}
}

func TestAPIFleet(t *testing.T) {
	api, _ := testAPI(t)
	if w := get(t, api.Handler(), "/fleet"); w.Code != http.StatusNotFound {
		t.Fatalf("fleet-less /fleet status %d", w.Code)
	}

	api.cfg.Topology = func() any {
		return map[string]any{"nodes": 4, "shards": 1}
	}
	var top struct {
		Nodes  int `json:"nodes"`
		Shards int `json:"shards"`
	}
	decode(t, get(t, api.Handler(), "/fleet"), &top)
	if top.Nodes != 4 || top.Shards != 1 {
		t.Fatalf("topology %+v", top)
	}
}

func TestAPIStream(t *testing.T) {
	api, _ := testAPI(t)
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	readFrame := func(r *bufio.Reader) streamFrame {
		t.Helper()
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				t.Fatal(err)
			}
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var f streamFrame
			if err := json.Unmarshal([]byte(strings.TrimPrefix(strings.TrimSpace(line), "data: ")), &f); err != nil {
				t.Fatal(err)
			}
			return f
		}
	}
	br := bufio.NewReader(resp.Body)

	// The first frame arrives without any Publish.
	f0 := readFrame(br)
	if f0.Seq != 0 || f0.Series != 2 || f0.SimSeconds != 1.5 || f0.Status != "critical" {
		t.Fatalf("first frame %+v", f0)
	}

	api.Publish()
	if f1 := readFrame(br); f1.Seq != 1 {
		t.Fatalf("second frame %+v", f1)
	}
}

// TestAPIPprof smoke-checks the profiler mount.
func TestAPIPprof(t *testing.T) {
	api, _ := testAPI(t)
	w := get(t, api.Handler(), "/debug/pprof/cmdline")
	if w.Code != http.StatusOK {
		t.Fatalf("pprof status %d", w.Code)
	}
	if _, err := io.ReadAll(w.Result().Body); err != nil {
		t.Fatal(err)
	}
}
