package amester

import (
	"net"
	"strings"
	"sync"
	"testing"

	"agsim/internal/chip"
	"agsim/internal/firmware"
	"agsim/internal/telemetry"
	"agsim/internal/workload"
)

func startService(t *testing.T, probes ...telemetry.Probe) (*Service, string) {
	t.Helper()
	svc := NewService(probes...)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	svc.Start(l)
	t.Cleanup(func() { svc.Close() })
	return svc, l.Addr().String()
}

func TestServiceValidation(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for nil reader")
			}
		}()
		NewService(telemetry.Probe{Name: "x"})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for duplicate")
			}
		}()
		r := func() float64 { return 0 }
		NewService(telemetry.Probe{Name: "x", Read: r}, telemetry.Probe{Name: "x", Read: r})
	}()
}

func TestProtocolRoundTrips(t *testing.T) {
	v := 1.0
	svc, addr := startService(t,
		telemetry.Probe{Name: "power_w", Read: func() float64 { return v }},
		telemetry.Probe{Name: "freq_mhz", Read: func() float64 { return 4200 }},
	)
	svc.Publish()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	names, err := c.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "freq_mhz" || names[1] != "power_w" {
		t.Errorf("List = %v", names)
	}
	got, err := c.Get("power_w")
	if err != nil || got != 1 {
		t.Errorf("Get = %v, %v", got, err)
	}
	if _, err := c.Get("nope"); err == nil {
		t.Error("expected error for unknown sensor")
	}

	// Snapshot semantics: new probe values appear only after Publish.
	v = 42
	if got, _ := c.Get("power_w"); got != 1 {
		t.Errorf("unpublished value leaked: %v", got)
	}
	seqBefore, _ := c.Seq()
	svc.Publish()
	if got, _ := c.Get("power_w"); got != 42 {
		t.Errorf("published value missing: %v", got)
	}
	seqAfter, _ := c.Seq()
	if seqAfter != seqBefore+1 {
		t.Errorf("seq %d -> %d", seqBefore, seqAfter)
	}

	all, err := c.GetAll()
	if err != nil {
		t.Fatal(err)
	}
	if all["power_w"] != 42 || all["freq_mhz"] != 4200 {
		t.Errorf("GetAll = %v", all)
	}
}

func TestUnknownCommand(t *testing.T) {
	_, addr := startService(t, telemetry.Probe{Name: "x", Read: func() float64 { return 0 }})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("BOGUS\nGET\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf[:n]), "ERR") {
		t.Errorf("response = %q", string(buf[:n]))
	}
}

func TestConcurrentClients(t *testing.T) {
	svc, addr := startService(t, telemetry.Probe{Name: "x", Read: func() float64 { return 7 }})
	svc.Publish()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for j := 0; j < 50; j++ {
				if v, err := c.Get("x"); err != nil || v != 7 {
					t.Errorf("Get = %v, %v", v, err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestEndToEndWithSimulatedChip(t *testing.T) {
	// The real workflow: a simulated chip steps while the service
	// publishes on the firmware cadence and a remote client samples power,
	// just as the paper's AMESTER host did.
	c := chip.MustNew(chip.DefaultConfig("P0", 51))
	d := workload.MustGet("raytrace")
	for i := 0; i < 4; i++ {
		c.Place(i, workload.NewThread(d, 1e9, nil))
	}
	c.SetMode(firmware.Undervolt)

	svc, addr := startService(t, telemetry.ChipProbes("", c)...)
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	var power []float64
	since := 0.0
	for i := 0; i < 3000; i++ {
		c.Step(chip.DefaultStepSec)
		since += chip.DefaultStepSec
		if since >= telemetry.Interval {
			since = 0
			svc.Publish()
			v, err := client.Get("power_w")
			if err != nil {
				t.Fatal(err)
			}
			power = append(power, v)
		}
	}
	if len(power) < 80 {
		t.Fatalf("only %d samples", len(power))
	}
	last := power[len(power)-1]
	if last < 40 || last > 160 {
		t.Errorf("sampled power = %v", last)
	}
	// Undervolting must be visible remotely.
	if uv, err := client.Get("undervolt_mv"); err != nil || uv <= 0 {
		t.Errorf("remote undervolt = %v, %v", uv, err)
	}
}
