// Package amester provides the out-of-band measurement service of the
// reproduction: the paper reads its sensors with IBM AMESTER, a tool that
// talks to the server's service processor over the network and samples
// CPMs, power and voltage at a 32 ms cadence (§4.1).
//
// The Service side publishes snapshots of telemetry probes; the simulation
// loop calls Publish after stepping, and remote clients read the latest
// snapshot over a line-based TCP protocol. Publishing decouples the
// simulator (single-goroutine, deterministic) from concurrent network
// readers — exactly the role the real service processor plays between the
// running machine and the measurement host.
//
// Protocol (one request per line, responses terminated by "END" where
// multi-line):
//
//	PING            -> "OK"
//	LIST            -> one sensor name per line, then "END"
//	GET <name>      -> "<value>" or "ERR unknown sensor"
//	GETALL          -> "<name> <value>" per line, then "END"
//	SEQ             -> "<sequence>" of the current snapshot
//	QUIT            -> "BYE", connection closes
package amester

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"

	"agsim/internal/telemetry"
)

// Service publishes telemetry snapshots to network clients.
type Service struct {
	probes []telemetry.Probe

	mu   sync.RWMutex
	vals map[string]float64
	seq  uint64

	listener net.Listener
	wg       sync.WaitGroup
	closed   chan struct{}
}

// NewService creates a service over the given probes. Probe names must be
// unique (the telemetry sampler enforces the same rule).
func NewService(probes ...telemetry.Probe) *Service {
	seen := map[string]bool{}
	for _, p := range probes {
		if p.Read == nil {
			panic(fmt.Sprintf("amester: probe %q has no reader", p.Name))
		}
		if seen[p.Name] {
			panic(fmt.Sprintf("amester: duplicate probe %q", p.Name))
		}
		seen[p.Name] = true
	}
	return &Service{
		probes: probes,
		vals:   map[string]float64{},
		closed: make(chan struct{}),
	}
}

// Publish snapshots every probe. Call it from the simulation goroutine
// (typically once per firmware tick); clients always see a consistent
// snapshot.
func (s *Service) Publish() {
	fresh := make(map[string]float64, len(s.probes))
	for _, p := range s.probes {
		fresh[p.Name] = p.Read()
	}
	s.mu.Lock()
	s.vals = fresh
	s.seq++
	s.mu.Unlock()
}

// Seq returns the current snapshot sequence number.
func (s *Service) Seq() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.seq
}

// Start begins serving on the listener; it returns immediately. Close
// stops the service.
func (s *Service) Start(l net.Listener) {
	s.listener = l
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				select {
				case <-s.closed:
					return
				default:
					// Transient accept error; keep serving.
					continue
				}
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.handle(conn)
			}()
		}
	}()
}

// Close stops accepting and waits for in-flight connections to finish.
func (s *Service) Close() error {
	close(s.closed)
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Service) handle(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch strings.ToUpper(fields[0]) {
		case "PING":
			fmt.Fprintln(w, "OK")
		case "SEQ":
			fmt.Fprintln(w, s.Seq())
		case "LIST":
			s.mu.RLock()
			names := make([]string, 0, len(s.vals))
			for n := range s.vals {
				names = append(names, n)
			}
			s.mu.RUnlock()
			sort.Strings(names)
			for _, n := range names {
				fmt.Fprintln(w, n)
			}
			fmt.Fprintln(w, "END")
		case "GET":
			if len(fields) != 2 {
				fmt.Fprintln(w, "ERR usage: GET <name>")
				break
			}
			s.mu.RLock()
			v, ok := s.vals[fields[1]]
			s.mu.RUnlock()
			if !ok {
				fmt.Fprintln(w, "ERR unknown sensor")
				break
			}
			fmt.Fprintf(w, "%g\n", v)
		case "GETALL":
			s.mu.RLock()
			type kv struct {
				k string
				v float64
			}
			all := make([]kv, 0, len(s.vals))
			for k, v := range s.vals {
				all = append(all, kv{k, v})
			}
			s.mu.RUnlock()
			sort.Slice(all, func(i, j int) bool { return all[i].k < all[j].k })
			for _, e := range all {
				fmt.Fprintf(w, "%s %g\n", e.k, e.v)
			}
			fmt.Fprintln(w, "END")
		case "QUIT":
			fmt.Fprintln(w, "BYE")
			w.Flush()
			return
		default:
			fmt.Fprintln(w, "ERR unknown command")
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// Client talks to a Service.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
}

// Dial connects to a service address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (useful with net.Pipe in
// tests).
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, r: bufio.NewReader(conn)}
}

// Close terminates the session politely.
func (c *Client) Close() error {
	fmt.Fprintln(c.conn, "QUIT")
	return c.conn.Close()
}

func (c *Client) roundTrip(cmd string) (string, error) {
	if _, err := fmt.Fprintln(c.conn, cmd); err != nil {
		return "", err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(line), nil
}

func (c *Client) readToEnd(first string) ([]string, error) {
	var out []string
	line := first
	for {
		if line == "END" {
			return out, nil
		}
		if strings.HasPrefix(line, "ERR") {
			return nil, errors.New(line)
		}
		out = append(out, line)
		next, err := c.r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		line = strings.TrimSpace(next)
	}
}

// Ping checks the service is alive.
func (c *Client) Ping() error {
	resp, err := c.roundTrip("PING")
	if err != nil {
		return err
	}
	if resp != "OK" {
		return fmt.Errorf("amester: unexpected ping response %q", resp)
	}
	return nil
}

// Seq returns the service's snapshot sequence number.
func (c *Client) Seq() (uint64, error) {
	resp, err := c.roundTrip("SEQ")
	if err != nil {
		return 0, err
	}
	return strconv.ParseUint(resp, 10, 64)
}

// List returns the sensor names.
func (c *Client) List() ([]string, error) {
	first, err := c.roundTrip("LIST")
	if err != nil {
		return nil, err
	}
	return c.readToEnd(first)
}

// Get reads one sensor.
func (c *Client) Get(name string) (float64, error) {
	resp, err := c.roundTrip("GET " + name)
	if err != nil {
		return 0, err
	}
	if strings.HasPrefix(resp, "ERR") {
		return 0, errors.New(resp)
	}
	return strconv.ParseFloat(resp, 64)
}

// GetAll reads every sensor in one round trip.
func (c *Client) GetAll() (map[string]float64, error) {
	first, err := c.roundTrip("GETALL")
	if err != nil {
		return nil, err
	}
	lines, err := c.readToEnd(first)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(lines))
	for _, line := range lines {
		var name string
		var v float64
		if _, err := fmt.Sscanf(line, "%s %g", &name, &v); err != nil {
			return nil, fmt.Errorf("amester: malformed GETALL line %q", line)
		}
		out[name] = v
	}
	return out, nil
}
