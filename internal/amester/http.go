package amester

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"

	"agsim/internal/health"
	"agsim/internal/obs"
	"agsim/internal/tsdb"
)

// API serves the observability plane over HTTP — the live counterpart of
// the files -metrics and -trace write after a batch run:
//
//	GET /metrics             merged counters/gauges/histograms, Prometheus text
//	GET /manifest            the JSON run manifest
//	GET /timeseries          series inventory (names, specs, push counts)
//	GET /timeseries?name=N   one merged series, every level (&res=L for one)
//	GET /health              detector findings over a fresh snapshot
//	GET /fleet               topology snapshot (when a fleet feeds the API)
//	GET /stream              server-sent events, one per Publish
//	GET /debug/pprof/...     the runtime profiler
//
// Snapshot-producing handlers take the configured mutex, the same lock
// the simulation step loop holds while stepping, so a scrape never races
// a live step — the recorder's hot path is deliberately unlocked and
// this is the only synchronization.
type API struct {
	cfg  APIConfig
	mu   sync.Mutex // guards subs; APIConfig.Mu guards the recorder
	subs map[chan struct{}]struct{}
}

// APIConfig wires an API to a running simulation.
type APIConfig struct {
	// Recorder roots the observation tree the endpoints snapshot.
	Recorder *obs.Recorder
	// Manifest, when non-nil, backs /manifest (SimSeconds is refreshed
	// from SimTime on each request).
	Manifest *obs.Manifest
	// Mu, when non-nil, is held around every recorder snapshot; share it
	// with the simulation step loop.
	Mu *sync.Mutex
	// SimTime reports the simulated clock (optional).
	SimTime func() float64
	// Topology, when non-nil, backs /fleet with any JSON-marshalable
	// snapshot (fleet.Topology in the fleet drivers). Called under Mu.
	Topology func() any
	// Thresholds configures /health; the zero value selects
	// health.Default().
	Thresholds health.Thresholds
}

// NewAPI builds the HTTP plane. A zero-value Thresholds field is
// replaced with health.Default().
func NewAPI(cfg APIConfig) *API {
	if cfg.Thresholds == (health.Thresholds{}) {
		cfg.Thresholds = health.Default()
	}
	return &API{cfg: cfg, subs: make(map[chan struct{}]struct{})}
}

// lock holds the shared simulation mutex, when one is configured.
func (a *API) lock() func() {
	if a.cfg.Mu == nil {
		return func() {}
	}
	a.cfg.Mu.Lock()
	return a.cfg.Mu.Unlock
}

// snapshot takes a merged log under the simulation lock.
func (a *API) snapshot() obs.Log {
	unlock := a.lock()
	defer unlock()
	return a.cfg.Recorder.Snapshot()
}

// simTime reads the simulated clock under the simulation lock.
func (a *API) simTime() float64 {
	if a.cfg.SimTime == nil {
		return 0
	}
	unlock := a.lock()
	defer unlock()
	return a.cfg.SimTime()
}

// Publish wakes every /stream subscriber; call it on the telemetry
// cadence (the same place Service.Publish runs).
func (a *API) Publish() {
	a.mu.Lock()
	for ch := range a.subs {
		select {
		case ch <- struct{}{}:
		default: // a slow subscriber keeps its pending wake
		}
	}
	a.mu.Unlock()
}

// Handler returns the API's mux.
func (a *API) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", a.handleMetrics)
	mux.HandleFunc("/manifest", a.handleManifest)
	mux.HandleFunc("/timeseries", a.handleTimeseries)
	mux.HandleFunc("/health", a.handleHealth)
	mux.HandleFunc("/fleet", a.handleFleet)
	mux.HandleFunc("/stream", a.handleStream)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (a *API) handleMetrics(w http.ResponseWriter, r *http.Request) {
	lg := a.snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := lg.WriteProm(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (a *API) handleManifest(w http.ResponseWriter, r *http.Request) {
	if a.cfg.Manifest == nil {
		http.Error(w, "no manifest configured", http.StatusNotFound)
		return
	}
	unlock := a.lock()
	if a.cfg.SimTime != nil {
		a.cfg.Manifest.SimSeconds = a.cfg.SimTime()
	}
	unlock()
	w.Header().Set("Content-Type", "application/json")
	if err := a.cfg.Manifest.WriteJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// seriesInfo is one row of the /timeseries inventory.
type seriesInfo struct {
	Name   string    `json:"name"`
	Source string    `json:"source"`
	Spec   tsdb.Spec `json:"spec"`
}

// seriesBody is the /timeseries?name=... payload: the fleet-merged
// windows of one series, one slice per resolution level (or a single
// level under &res=).
type seriesBody struct {
	Name   string          `json:"name"`
	Spec   tsdb.Spec       `json:"spec"`
	Levels [][]tsdb.Window `json:"levels"`
}

func (a *API) handleTimeseries(w http.ResponseWriter, r *http.Request) {
	lg := a.snapshot()
	name := r.URL.Query().Get("name")
	w.Header().Set("Content-Type", "application/json")
	if name == "" {
		infos := []seriesInfo{}
		for i := range lg.Series {
			d := &lg.Series[i]
			infos = append(infos, seriesInfo{Name: d.Name, Source: d.Source, Spec: d.Spec})
		}
		sort.Slice(infos, func(i, j int) bool {
			if infos[i].Name != infos[j].Name {
				return infos[i].Name < infos[j].Name
			}
			return infos[i].Source < infos[j].Source
		})
		writeJSON(w, map[string]any{"series": infos})
		return
	}
	spec, levels, ok := lg.MergedSeries(name)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown series %q", name), http.StatusNotFound)
		return
	}
	if res := r.URL.Query().Get("res"); res != "" {
		li, err := strconv.Atoi(res)
		if err != nil || li < 0 || li >= len(levels) {
			http.Error(w, fmt.Sprintf("res must be 0..%d", len(levels)-1), http.StatusBadRequest)
			return
		}
		spec = tsdb.Spec{Levels: spec.Levels[li : li+1]}
		levels = levels[li : li+1]
	}
	writeJSON(w, seriesBody{Name: name, Spec: spec, Levels: levels})
}

// healthFinding is one detector firing, rendered for the wire.
type healthFinding struct {
	Source    string  `json:"source,omitempty"`
	Detector  string  `json:"detector"`
	Status    string  `json:"status"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	TimeUS    int64   `json:"time_us"`
	Msg       string  `json:"msg"`
}

func (a *API) handleHealth(w http.ResponseWriter, r *http.Request) {
	lg := a.snapshot()
	findings := health.Evaluate(&lg, a.cfg.Thresholds)
	body := struct {
		Status   string          `json:"status"`
		Findings []healthFinding `json:"findings"`
	}{Status: health.Worst(findings).String(), Findings: []healthFinding{}}
	for _, f := range findings {
		body.Findings = append(body.Findings, healthFinding{
			Source:    f.Source,
			Detector:  f.Detector.String(),
			Status:    f.Status.String(),
			Value:     f.Value,
			Threshold: f.Threshold,
			TimeUS:    f.TimeUS,
			Msg:       f.Msg,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, body)
}

func (a *API) handleFleet(w http.ResponseWriter, r *http.Request) {
	if a.cfg.Topology == nil {
		http.Error(w, "no fleet configured", http.StatusNotFound)
		return
	}
	unlock := a.lock()
	top := a.cfg.Topology()
	unlock()
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, top)
}

// streamFrame is one SSE data payload: the heartbeat a dashboard polls
// /timeseries and /health off of.
type streamFrame struct {
	Seq        uint64  `json:"seq"`
	SimSeconds float64 `json:"sim_seconds"`
	Series     int     `json:"series"`
	Events     int     `json:"events"`
	EventsLost uint64  `json:"events_lost"`
	Status     string  `json:"status"`
}

func (a *API) handleStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")

	ch := make(chan struct{}, 1)
	a.mu.Lock()
	a.subs[ch] = struct{}{}
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		delete(a.subs, ch)
		a.mu.Unlock()
	}()

	var seq uint64
	send := func() bool {
		lg := a.snapshot()
		findings := health.Evaluate(&lg, a.cfg.Thresholds)
		frame := streamFrame{
			Seq:        seq,
			SimSeconds: a.simTime(),
			Series:     len(lg.Series),
			Events:     len(lg.Events),
			EventsLost: lg.EventsLost,
			Status:     health.Worst(findings).String(),
		}
		seq++
		data, err := json.Marshal(frame)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	// First frame immediately: a subscriber sees state without waiting a
	// publish interval.
	if !send() {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-ch:
			if !send() {
				return
			}
		}
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
