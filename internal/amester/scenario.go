// Scenario is the serving-configuration record amesterd stores in every
// snapshot header (snapshot.Meta.Extra): the constructor arguments of the
// served simulation, enough to rebuild a bit-identical target for
// snapshot.Load. `agsim replay` reads it back, rebuilds the server, and
// restores the image into it — the restore-into-same-shape contract means
// the scenario, not the image, carries the immutable structure.
package amester

import (
	"encoding/json"
	"fmt"

	"agsim/internal/firmware"
	"agsim/internal/obs"
	"agsim/internal/server"
	"agsim/internal/tsdb"
	"agsim/internal/workload"
)

// Scenario captures how an amesterd serve loop built its server.
type Scenario struct {
	Workload   string `json:"workload"`
	Threads    int    `json:"threads"`
	Mode       string `json:"mode"`
	Borrow     bool   `json:"borrow"`
	Seed       uint64 `json:"seed"`
	Timeseries bool   `json:"timeseries"`
}

// ParseMode maps the flag spelling to the firmware mode.
func ParseMode(name string) (firmware.Mode, error) {
	switch name {
	case "static":
		return firmware.Static, nil
	case "undervolt":
		return firmware.Undervolt, nil
	case "overclock":
		return firmware.Overclock, nil
	}
	return 0, fmt.Errorf("unknown mode %q", name)
}

// Marshal renders the scenario for a snapshot header.
func (sc Scenario) Marshal() string {
	b, _ := json.Marshal(sc)
	return string(b)
}

// ParseScenario reads a snapshot header's Extra back.
func ParseScenario(extra string) (Scenario, error) {
	var sc Scenario
	if err := json.Unmarshal([]byte(extra), &sc); err != nil {
		return sc, fmt.Errorf("amester: bad scenario in snapshot header: %w", err)
	}
	return sc, nil
}

// Build constructs the server and recorder exactly as the serve loop
// does, so a snapshot taken there restores here.
func (sc Scenario) Build() (*server.Server, *obs.Recorder, error) {
	d, err := workload.Get(sc.Workload)
	if err != nil {
		return nil, nil, err
	}
	mode, err := ParseMode(sc.Mode)
	if err != nil {
		return nil, nil, err
	}
	rec := obs.New("amesterd", obs.DefaultEventCap)
	if sc.Timeseries {
		rec.EnableTimeSeries(tsdb.DefaultSpec())
	}
	cfg := server.DefaultConfig(sc.Seed)
	cfg.Recorder = rec
	srv := server.MustNew(cfg)
	var placements []server.Placement
	if sc.Borrow {
		placements = server.BorrowedPlacements(sc.Threads, srv.Sockets())
	} else {
		placements = server.ConsolidatedPlacements(sc.Threads)
	}
	if _, err := srv.Submit("job", d, placements, 1e9); err != nil {
		return nil, nil, err
	}
	srv.SetMode(mode)
	return srv, rec, nil
}
