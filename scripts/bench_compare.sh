#!/bin/sh
# bench_compare.sh [old.json new.json] — diff two bench.sh recordings and
# flag ns/op regressions beyond the threshold on the guarded benchmarks
# (chip-step and sweep lanes). With no arguments, compares the two most
# recent BENCH_*.json in the repo root; when only one exists (a fresh run
# on the same date as the committed baseline), its committed version from
# git HEAD serves as the old side. The report also prints the wall-clock
# speedup of each multi-rate benchmark pair (BenchmarkX vs BenchmarkXExact)
# found in the new recording.
#
# The new recording is also checked against the flight recorder's own
# budget: BenchmarkChipStepRecorded must stay within RECORDER_THRESHOLD_PCT
# of BenchmarkChipStep ns/op and keep 0 allocs/op.
#
# The sweep lanes carry an absolute allocation budget: arena pooling keeps
# the Sweep and DatacenterSweep families' steady-state footprint small, and
# SWEEP_ALLOC_BUDGET / SWEEP_BYTES_BUDGET are hard ceilings (allocs/op,
# B/op) that catch a pooling regression — a driver forgetting to release,
# or a Reset path that reallocates — long before the ns/op gate notices.
#
# Exit status: 0 clean, 1 regression found, 2 usage/input error.
#
# Environment:
#   THRESHOLD_PCT           regression threshold in percent (default 10)
#   GUARD_RE                awk regex of benchmark names to guard
#                           (default ChipStep|Sweep)
#   RECORDER_THRESHOLD_PCT  instrumented-vs-plain step overhead budget in
#                           percent (default 3)
#   SWEEP_ALLOC_BUDGET      allocs/op ceiling on the Sweep/DatacenterSweep
#                           families (default 4500, ~2x the pooled steady
#                           state; the pre-arena figure was ~82000)
#   SWEEP_BYTES_BUDGET      B/op ceiling on the same families (default
#                           250000, ~2x pooled; pre-arena mesh was ~3.6 MB)
set -eu

threshold="${THRESHOLD_PCT:-10}"
guard="${GUARD_RE:-ChipStep|Sweep}"
rthreshold="${RECORDER_THRESHOLD_PCT:-3}"
abudget="${SWEEP_ALLOC_BUDGET:-4500}"
bbudget="${SWEEP_BYTES_BUDGET:-250000}"

baseline_tmp=""
cleanup() { [ -z "$baseline_tmp" ] || rm -f "$baseline_tmp"; }
trap cleanup EXIT

if [ $# -ge 2 ]; then
	old="$1"
	new="$2"
else
	set -- $(ls BENCH_*.json 2>/dev/null | sort | tail -2)
	if [ $# -eq 1 ]; then
		# Same-date rerun: the lone file shadows the committed baseline.
		new="$1"
		baseline_tmp="$(mktemp)"
		if git show "HEAD:$new" > "$baseline_tmp" 2>/dev/null; then
			old="$baseline_tmp"
			echo "bench_compare.sh: using committed HEAD:$new as the old side"
		else
			echo "bench_compare.sh: need two BENCH_*.json files (run 'make bench' twice)" >&2
			exit 2
		fi
	elif [ $# -lt 1 ]; then
		echo "bench_compare.sh: need two BENCH_*.json files (run 'make bench' twice)" >&2
		exit 2
	else
		old="$1"
		new="$2"
	fi
fi
[ -r "$old" ] && [ -r "$new" ] || { echo "bench_compare.sh: cannot read $old / $new" >&2; exit 2; }

echo "comparing $old (old) -> $new (new), threshold ${threshold}% on /$guard/"

awk -v threshold="$threshold" -v guard="$guard" -v rthreshold="$rthreshold" \
	-v abudget="$abudget" -v bbudget="$bbudget" '
	/"Benchmark/ {
		line = $0
		gsub(/^[ \t]*"/, "", line)
		gsub(/",?[ \t]*$/, "", line)
		n = split(line, f, " ")
		name = f[1]
		sub(/-[0-9]+$/, "", name) # strip the -GOMAXPROCS suffix
		v = ""
		a = ""
		bb = ""
		for (i = 2; i < n; i++) {
			if (f[i+1] == "ns/op") v = f[i]
			if (f[i+1] == "allocs/op") a = f[i]
			if (f[i+1] == "B/op") bb = f[i]
		}
		if (v == "") next
		if (FILENAME == ARGV[1]) {
			if (!(name in oldv)) oldv[name] = v
		} else if (!(name in newv)) {
			newv[name] = v
			newa[name] = a
			newb[name] = bb
			order[++cnt] = name
		}
	}
	END {
		status = 0
		printf "%-36s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta"
		for (i = 1; i <= cnt; i++) {
			name = order[i]
			if (!(name in oldv)) {
				printf "%-36s %14s %14.0f %9s\n", name, "-", newv[name], "new"
				continue
			}
			d = (newv[name] - oldv[name]) / oldv[name] * 100
			flag = ""
			if (name ~ guard && d > threshold) {
				flag = "  << REGRESSION"
				status = 1
			}
			printf "%-36s %14.0f %14.0f %+8.1f%%%s\n", name, oldv[name], newv[name], d, flag
		}
		# Multi-rate stepping lanes: wall-clock speedup of each macro
		# benchmark over its -exact reference twin, within the new recording.
		header = 0
		for (i = 1; i <= cnt; i++) {
			name = order[i]
			exact = name "Exact"
			if (!(exact in newv) || newv[name] <= 0) continue
			if (!header) {
				print ""
				print "multi-rate stepping (macro vs exact, new recording):"
				header = 1
			}
			printf "%-36s %13.1fx faster than %s\n", name, newv[exact] / newv[name], exact
		}
		# Flight recorder budget, measured inside the new recording: the
		# instrumented step loop against the uninstrumented one.
		base = "BenchmarkChipStep"
		recd = "BenchmarkChipStepRecorded"
		if ((base in newv) && (recd in newv) && newv[base] > 0) {
			ovh = (newv[recd] - newv[base]) / newv[base] * 100
			print ""
			printf "flight recorder overhead (new recording): %+.1f%% ns/op (budget %s%%)\n", ovh, rthreshold
			if (ovh > rthreshold + 0) {
				printf "FAIL: %s exceeds %s by more than %s%% ns/op\n", recd, base, rthreshold
				status = 1
			}
			if (newa[recd] != "" && newa[recd] + 0 > 0) {
				printf "FAIL: %s allocates (%s allocs/op, want 0)\n", recd, newa[recd]
				status = 1
			}
		}
		# Sweep allocation budget, measured inside the new recording:
		# absolute ceilings on the pooled sweep lanes.
		header = 0
		for (i = 1; i <= cnt; i++) {
			name = order[i]
			if (name !~ /^Benchmark(Sweep|DatacenterSweep)/) continue
			if (newa[name] == "" && newb[name] == "") continue
			if (!header) {
				print ""
				printf "sweep allocation budget (new recording): <=%d allocs/op, <=%d B/op\n", abudget, bbudget
				header = 1
			}
			printf "%-36s %10s allocs/op %12s B/op\n", name, newa[name], newb[name]
			if (newa[name] != "" && newa[name] + 0 > abudget + 0) {
				printf "FAIL: %s exceeds the sweep alloc budget (%s allocs/op > %d)\n", name, newa[name], abudget
				status = 1
			}
			if (newb[name] != "" && newb[name] + 0 > bbudget + 0) {
				printf "FAIL: %s exceeds the sweep bytes budget (%s B/op > %d)\n", name, newb[name], bbudget
				status = 1
			}
		}
		if (status) {
			print ""
			printf "FAIL: benchmark gate failed (see above)\n"
		}
		exit status
	}' "$old" "$new"
