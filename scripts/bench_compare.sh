#!/bin/sh
# bench_compare.sh [old.json new.json] — diff two bench.sh recordings and
# flag ns/op regressions beyond the threshold on the guarded benchmarks
# (chip-step and sweep lanes). With no arguments, compares the two most
# recent BENCH_*.json in the repo root.
#
# Exit status: 0 clean, 1 regression found, 2 usage/input error.
#
# Environment:
#   THRESHOLD_PCT  regression threshold in percent (default 10)
#   GUARD_RE       awk regex of benchmark names to guard
#                  (default ChipStep|Sweep)
set -eu

threshold="${THRESHOLD_PCT:-10}"
guard="${GUARD_RE:-ChipStep|Sweep}"

if [ $# -ge 2 ]; then
	old="$1"
	new="$2"
else
	set -- $(ls BENCH_*.json 2>/dev/null | sort | tail -2)
	if [ $# -lt 2 ]; then
		echo "bench_compare.sh: need two BENCH_*.json files (run 'make bench' twice)" >&2
		exit 2
	fi
	old="$1"
	new="$2"
fi
[ -r "$old" ] && [ -r "$new" ] || { echo "bench_compare.sh: cannot read $old / $new" >&2; exit 2; }

echo "comparing $old (old) -> $new (new), threshold ${threshold}% on /$guard/"

awk -v threshold="$threshold" -v guard="$guard" '
	/"Benchmark/ {
		line = $0
		gsub(/^[ \t]*"/, "", line)
		gsub(/",?[ \t]*$/, "", line)
		n = split(line, f, " ")
		name = f[1]
		sub(/-[0-9]+$/, "", name) # strip the -GOMAXPROCS suffix
		v = ""
		for (i = 2; i < n; i++) if (f[i+1] == "ns/op") v = f[i]
		if (v == "") next
		if (FILENAME == ARGV[1]) {
			oldv[name] = v
		} else if (!(name in newv)) {
			newv[name] = v
			order[++cnt] = name
		}
	}
	END {
		status = 0
		printf "%-36s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta"
		for (i = 1; i <= cnt; i++) {
			name = order[i]
			if (!(name in oldv)) {
				printf "%-36s %14s %14.0f %9s\n", name, "-", newv[name], "new"
				continue
			}
			d = (newv[name] - oldv[name]) / oldv[name] * 100
			flag = ""
			if (name ~ guard && d > threshold) {
				flag = "  << REGRESSION"
				status = 1
			}
			printf "%-36s %14.0f %14.0f %+8.1f%%%s\n", name, oldv[name], newv[name], d, flag
		}
		if (status) {
			print ""
			printf "FAIL: guarded benchmark regressed more than %s%% ns/op\n", threshold
		}
		exit status
	}' "$old" "$new"
