#!/bin/sh
# bench_compare.sh [old.json new.json] — diff two bench.sh recordings and
# flag ns/op regressions beyond the threshold on the guarded benchmarks
# (chip-step and sweep lanes). With no arguments, compares the two most
# recent BENCH_*.json in the repo root; when only one exists (a fresh run
# on the same date as the committed baseline), its committed version from
# git HEAD serves as the old side. The report also prints the wall-clock
# speedup of each multi-rate benchmark pair (BenchmarkX vs BenchmarkXExact)
# found in the new recording.
#
# The new recording is also checked against the flight recorder's own
# budget: BenchmarkChipStepRecorded must stay within RECORDER_THRESHOLD_PCT
# of BenchmarkChipStep ns/op and keep 0 allocs/op, and the batched twin
# BenchmarkBatchStepRecorded must keep 0 allocs/op too. The telemetry
# plane carries the same shape of gate: BenchmarkChipStepTimeseries (the
# recorder plus multi-resolution series and per-tick attribution) must
# stay within TSDB_THRESHOLD_PCT of BenchmarkChipStep ns/op and keep 0
# allocs/op. Its default budget is wider than the recorder's: the pair
# measures +5-7% even on a clean baseline build, and each side swings
# ~8% run to run, so a 3% budget flags healthy recordings — the alloc
# gate (0 allocs/op) is the sharp edge, the percentage is a backstop.
#
# The sweep lanes carry an absolute allocation budget: arena pooling keeps
# the Sweep and DatacenterSweep families' steady-state footprint small, and
# SWEEP_ALLOC_BUDGET / SWEEP_BYTES_BUDGET are hard ceilings (allocs/op,
# B/op) that catch a pooling regression — a driver forgetting to release,
# or a Reset path that reallocates — long before the ns/op gate notices.
# The 64-node fleet lanes (…Parallel64, …Parallel64Batched) get their own
# FLEET_ALLOC_BUDGET / FLEET_BYTES_BUDGET ceilings: a 64-node sweep's
# steady state is an order of magnitude above the 4-node lanes, so holding
# both families to one number would either mask fleet regressions or
# flag healthy fleet runs. The fleet lanes are likewise exempt from the
# percentage regression gate — they run at a handful of iterations and
# swing far more than 10% run to run; the batched-speedup floor and the
# fleet budgets are their gates.
#
# The batched stepping engine carries a speedup floor: each fleet pair
# (BenchmarkX vs BenchmarkXBatched in the new recording) must show
# batched >= BATCH_SPEEDUP_MIN x scalar. The default scales with the
# recording's gomaxprocs, because the batched lane's headline win is
# node-level parallel stepping: on >=4-way hosts it must be >=2x; on a
# single-CPU host no parallel win is physically possible and the floor
# only catches catastrophic kernel regressions (>=0.5x, i.e. no worse
# than 2x slower under single-run noise); in between it must at least
# not lose (>=1.0x).
#
# The fleet-scale lanes (BenchmarkFleetAdvance{256,1024,4096}) carry a
# scaling gate: the 4096-node per-node advance cost (the ns/sim_s_node
# metric the benchmarks report) must stay within FLEET_SCALING_MAX x the
# 256-node cost (default 1.5) — sharded execution is supposed to make
# per-node cost near-flat in fleet size. The gate is enforced only when
# the recording ran at gomaxprocs >= 4 (like the batched-speedup floor,
# the lanes run at single-digit iterations and a 1-CPU box swings too
# much to gate hard; the ratio still prints as advisory). At
# gomaxprocs 1 the shard fan-out runs serial and the FleetAdvance lanes
# must instead be allocation-free: pooled arenas and pre-sized run
# queues leave nothing per epoch, so any allocs/op is a pooling
# regression. Both fleet-scale lanes are exempt from the percentage
# regression gate for the same few-iteration reason as the 64-node
# lanes.
#
# The warm-start lane carries the snapshot engine's headline gate: the
# settle-dominated steady-state sweep pair (BenchmarkSweepSteadyExact
# cold vs BenchmarkSweepWarmStartExact restoring settled baselines from
# the snapshot cache) must show warm >= WARMSTART_SPEEDUP_MIN x cold
# (default 2: the win is algorithmic — a ~100 us restore replacing a
# 1.2 s settle — so it does not scale with gomaxprocs). Every warm lane
# also reports snap_bytes, the warm cache's resident image footprint for
# the whole sweep, held to the SNAP_BYTES_BUDGET ceiling (default 8 MB;
# the Fig13 suite sits near 2.5 MB) so image bloat — a skipped-type
# regression, a recorder leaking into images — is caught by size, not
# just speed. The warm lanes run at single-digit iterations, so like the
# fleet lanes they are exempt from the percentage regression gate and
# the sweep allocation budget (the cache itself is the allocation).
#
# The sampled lane carries its own twin gates: each long-horizon pair
# (BenchmarkXSampled vs BenchmarkXLongHorizon in the new recording) must
# show sampled >= SAMPLED_SPEEDUP_MIN x macro (default 10: the win is
# single-threaded and algorithmic — fast-forwarded spans vs tick-bound
# macro leaps — so it does not scale with gomaxprocs), and each sampled
# bench's sampled_err_rel metric (its headline vs its own untimed macro
# reference) must stay within SAMPLED_ERR_MAX (default 0.01). The
# long-horizon lanes run at single-digit iteration counts, so like the
# fleet lanes they are exempt from the percentage regression gate and
# from the sweep allocation budget; the speedup floor and error ceiling
# are their gates.
#
# Exit status: 0 clean, 1 regression found, 2 usage/input error.
#
# Environment:
#   THRESHOLD_PCT           regression threshold in percent (default 10)
#   GUARD_RE                awk regex of benchmark names to guard
#                           (default ChipStep|Sweep; fleet Parallel64
#                           lanes are always exempt, see above)
#   RECORDER_THRESHOLD_PCT  instrumented-vs-plain step overhead budget in
#                           percent (default 3)
#   TSDB_THRESHOLD_PCT      telemetry-plane (series + attribution) step
#                           overhead budget in percent (default 10: the
#                           pair sits at +5-7% with ~8% run-to-run noise
#                           on the reference box; see above)
#   SWEEP_ALLOC_BUDGET      allocs/op ceiling on the Sweep/DatacenterSweep
#                           families (default 4500, ~2x the pooled steady
#                           state; the pre-arena figure was ~82000)
#   SWEEP_BYTES_BUDGET      B/op ceiling on the same families (default
#                           250000, ~2x pooled; pre-arena mesh was ~3.6 MB)
#   FLEET_ALLOC_BUDGET      allocs/op ceiling on the 64-node fleet lanes
#                           (default 40000, ~2x the pooled steady state of
#                           either lane at 64 nodes)
#   FLEET_BYTES_BUDGET      B/op ceiling on the fleet lanes (default
#                           2000000, ~2.5x pooled steady state)
#   BATCH_SPEEDUP_MIN       batched-vs-scalar floor on the fleet pairs
#                           (default by gomaxprocs: >=4 -> 2.0,
#                           1 -> 0.5, else 1.0)
#   FLEET_SCALING_MAX       ceiling on FleetAdvance4096's ns/sim_s_node
#                           relative to FleetAdvance256's (default 1.5;
#                           enforced at gomaxprocs >= 4, advisory below)
#   WARMSTART_SPEEDUP_MIN   warm-vs-cold floor on the steady-state sweep
#                           pair (default 2)
#   SNAP_BYTES_BUDGET       ceiling on each warm lane's snap_bytes cache
#                           footprint (default 8000000)
#   SAMPLED_SPEEDUP_MIN     sampled-vs-macro floor on the long-horizon
#                           pairs (default 10)
#   SAMPLED_ERR_MAX         ceiling on each sampled bench's
#                           sampled_err_rel headline error (default 0.01)
set -eu

threshold="${THRESHOLD_PCT:-10}"
guard="${GUARD_RE:-ChipStep|Sweep}"
rthreshold="${RECORDER_THRESHOLD_PCT:-3}"
tthreshold="${TSDB_THRESHOLD_PCT:-10}"
abudget="${SWEEP_ALLOC_BUDGET:-4500}"
bbudget="${SWEEP_BYTES_BUDGET:-250000}"
fabudget="${FLEET_ALLOC_BUDGET:-40000}"
fbbudget="${FLEET_BYTES_BUDGET:-2000000}"
wsmin="${WARMSTART_SPEEDUP_MIN:-2}"
snapbudget="${SNAP_BYTES_BUDGET:-8000000}"
smin="${SAMPLED_SPEEDUP_MIN:-10}"
emax="${SAMPLED_ERR_MAX:-0.01}"
fsmax="${FLEET_SCALING_MAX:-1.5}"

baseline_tmp=""
cleanup() { [ -z "$baseline_tmp" ] || rm -f "$baseline_tmp"; }
trap cleanup EXIT

if [ $# -ge 2 ]; then
	old="$1"
	new="$2"
else
	set -- $(ls BENCH_*.json 2>/dev/null | sort | tail -2)
	if [ $# -eq 1 ]; then
		# Same-date rerun: the lone file shadows the committed baseline.
		new="$1"
		baseline_tmp="$(mktemp)"
		if git show "HEAD:$new" > "$baseline_tmp" 2>/dev/null; then
			old="$baseline_tmp"
			echo "bench_compare.sh: using committed HEAD:$new as the old side"
		else
			echo "bench_compare.sh: need two BENCH_*.json files (run 'make bench' twice)" >&2
			exit 2
		fi
	elif [ $# -lt 1 ]; then
		echo "bench_compare.sh: need two BENCH_*.json files (run 'make bench' twice)" >&2
		exit 2
	else
		old="$1"
		new="$2"
	fi
fi
[ -r "$old" ] && [ -r "$new" ] || { echo "bench_compare.sh: cannot read $old / $new" >&2; exit 2; }

# The batched speedup floor scales with the parallelism the new recording
# actually ran at (bench.sh stamps gomaxprocs into the JSON header).
gmp="$(sed -n 's/^[ \t]*"gomaxprocs":[ \t]*\([0-9][0-9]*\).*/\1/p' "$new" | head -1)"
[ -n "$gmp" ] || gmp=1
if [ -n "${BATCH_SPEEDUP_MIN:-}" ]; then
	bsmin="$BATCH_SPEEDUP_MIN"
elif [ "$gmp" -ge 4 ]; then
	bsmin=2.0
elif [ "$gmp" -le 1 ]; then
	bsmin=0.5
else
	bsmin=1.0
fi

echo "comparing $old (old) -> $new (new), threshold ${threshold}% on /$guard/"

awk -v threshold="$threshold" -v guard="$guard" -v rthreshold="$rthreshold" \
	-v tthreshold="$tthreshold" \
	-v abudget="$abudget" -v bbudget="$bbudget" \
	-v fabudget="$fabudget" -v fbbudget="$fbbudget" \
	-v bsmin="$bsmin" -v gmp="$gmp" \
	-v smin="$smin" -v emax="$emax" -v fsmax="$fsmax" \
	-v wsmin="$wsmin" -v snapbudget="$snapbudget" '
	/"Benchmark/ {
		line = $0
		gsub(/^[ \t]*"/, "", line)
		gsub(/",?[ \t]*$/, "", line)
		n = split(line, f, " ")
		name = f[1]
		sub(/-[0-9]+$/, "", name) # strip the -GOMAXPROCS suffix
		v = ""
		a = ""
		bb = ""
		e = ""
		nsn = ""
		sb = ""
		for (i = 2; i < n; i++) {
			if (f[i+1] == "ns/op") v = f[i]
			if (f[i+1] == "allocs/op") a = f[i]
			if (f[i+1] == "B/op") bb = f[i]
			if (f[i+1] == "sampled_err_rel") e = f[i]
			if (f[i+1] == "ns/sim_s_node") nsn = f[i]
			if (f[i+1] == "snap_bytes") sb = f[i]
		}
		if (v == "") next
		if (FILENAME == ARGV[1]) {
			if (!(name in oldv)) oldv[name] = v
		} else if (!(name in newv)) {
			newv[name] = v
			newa[name] = a
			newb[name] = bb
			newerr[name] = e
			newnsn[name] = nsn
			newsnap[name] = sb
			order[++cnt] = name
		}
	}
	END {
		status = 0
		printf "%-42s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta"
		for (i = 1; i <= cnt; i++) {
			name = order[i]
			if (!(name in oldv)) {
				printf "%-42s %14s %14.0f %9s\n", name, "-", newv[name], "new"
				continue
			}
			d = (newv[name] - oldv[name]) / oldv[name] * 100
			flag = ""
			# Fleet and long-horizon lanes are exempt: few-iteration runs
			# swing well past any useful threshold; their own gates are
			# below.
			if (name ~ guard && name !~ /Parallel64/ && \
			    name !~ /(FleetAdvance|WebsearchQoS)/ && \
			    name !~ /(LongHorizon|Sampled)$/ && \
			    name !~ /(WarmStart|SteadyExact)/ && d > threshold) {
				flag = "  << REGRESSION"
				status = 1
			}
			printf "%-42s %14.0f %14.0f %+8.1f%%%s\n", name, oldv[name], newv[name], d, flag
		}
		# Multi-rate stepping lanes: wall-clock speedup of each macro
		# benchmark over its -exact reference twin, within the new recording.
		header = 0
		for (i = 1; i <= cnt; i++) {
			name = order[i]
			exact = name "Exact"
			if (!(exact in newv) || newv[name] <= 0) continue
			if (!header) {
				print ""
				print "multi-rate stepping (macro vs exact, new recording):"
				header = 1
			}
			printf "%-42s %13.1fx faster than %s\n", name, newv[exact] / newv[name], exact
		}
		# Batched stepping lanes: wall-clock speedup of each batched fleet
		# benchmark over its scalar twin, within the new recording, gated
		# by the gomaxprocs-aware floor.
		header = 0
		for (i = 1; i <= cnt; i++) {
			base = order[i]
			batched = base "Batched"
			if (!(batched in newv) || newv[batched] <= 0) continue
			if (!header) {
				print ""
				printf "batched stepping (batched vs scalar, new recording; floor %.2fx at gomaxprocs=%d):\n", bsmin, gmp
				header = 1
			}
			sp = newv[base] / newv[batched]
			printf "%-42s %13.2fx vs %s\n", batched, sp, base
			if (sp < bsmin) {
				printf "FAIL: %s is %.2fx its scalar twin, below the %.2fx floor\n", batched, sp, bsmin
				status = 1
			}
		}
		# Warm-start lane: restoring settled baselines from the snapshot
		# cache must beat re-settling cold by the floor on the
		# settle-dominated steady-state pair, and every warm lane must
		# keep its cache footprint under the snap_bytes ceiling.
		cold = "BenchmarkSweepSteadyExact"
		warmb = "BenchmarkSweepWarmStartExact"
		if ((cold in newv) && (warmb in newv) && newv[warmb] > 0) {
			sp = newv[cold] / newv[warmb]
			print ""
			printf "warm-start lane (new recording; floor %.1fx, snap_bytes ceiling %d):\n", wsmin, snapbudget
			printf "%-42s %13.2fx vs %s\n", warmb, sp, cold
			if (sp < wsmin + 0) {
				printf "FAIL: %s is %.2fx its cold twin, below the %.1fx floor\n", warmb, sp, wsmin
				status = 1
			}
		}
		for (i = 1; i <= cnt; i++) {
			name = order[i]
			if (newsnap[name] == "") continue
			printf "%-42s %13s snap_bytes\n", name, newsnap[name]
			if (newsnap[name] + 0 > snapbudget + 0) {
				printf "FAIL: %s cache footprint %s snap_bytes exceeds the %d ceiling\n", name, newsnap[name], snapbudget
				status = 1
			}
		}
		# Sampled lane: each BenchmarkXSampled must beat its macro twin
		# BenchmarkXLongHorizon by the speedup floor and keep its headline
		# error (vs its own untimed macro reference) within the ceiling.
		header = 0
		for (i = 1; i <= cnt; i++) {
			name = order[i]
			if (name !~ /Sampled$/) continue
			macro = name
			sub(/Sampled$/, "LongHorizon", macro)
			if (!(macro in newv) || newv[name] <= 0) continue
			if (!header) {
				print ""
				printf "sampled lane (sampled vs macro, new recording; floor %.1fx, err ceiling %.4f):\n", smin, emax
				header = 1
			}
			sp = newv[macro] / newv[name]
			err = newerr[name]
			printf "%-42s %13.1fx vs %s  err=%s\n", name, sp, macro, (err == "" ? "n/a" : err)
			if (sp < smin + 0) {
				printf "FAIL: %s is %.1fx its macro twin, below the %.1fx floor\n", name, sp, smin
				status = 1
			}
			if (err != "" && err + 0 > emax + 0) {
				printf "FAIL: %s headline error %s exceeds the %.4f ceiling\n", name, err, emax
				status = 1
			}
		}
		# Flight recorder budget, measured inside the new recording: the
		# instrumented step loop against the uninstrumented one.
		base = "BenchmarkChipStep"
		recd = "BenchmarkChipStepRecorded"
		if ((base in newv) && (recd in newv) && newv[base] > 0) {
			ovh = (newv[recd] - newv[base]) / newv[base] * 100
			print ""
			printf "flight recorder overhead (new recording): %+.1f%% ns/op (budget %s%%)\n", ovh, rthreshold
			if (ovh > rthreshold + 0) {
				printf "FAIL: %s exceeds %s by more than %s%% ns/op\n", recd, base, rthreshold
				status = 1
			}
			if (newa[recd] != "" && newa[recd] + 0 > 0) {
				printf "FAIL: %s allocates (%s allocs/op, want 0)\n", recd, newa[recd]
				status = 1
			}
		}
		# Telemetry plane budget: the series + attribution step loop
		# against the uninstrumented one, same shape as the recorder gate.
		tsd = "BenchmarkChipStepTimeseries"
		if ((base in newv) && (tsd in newv) && newv[base] > 0) {
			ovh = (newv[tsd] - newv[base]) / newv[base] * 100
			print ""
			printf "telemetry plane overhead (new recording): %+.1f%% ns/op (budget %s%%)\n", ovh, tthreshold
			if (ovh > tthreshold + 0) {
				printf "FAIL: %s exceeds %s by more than %s%% ns/op\n", tsd, base, tthreshold
				status = 1
			}
			if (newa[tsd] != "" && newa[tsd] + 0 > 0) {
				printf "FAIL: %s allocates (%s allocs/op, want 0)\n", tsd, newa[tsd]
				status = 1
			}
		}
		# The batched step loop must stay alloc-free with the recorder
		# attached, like its scalar twin. (No percentage gate: the batch
		# covers 8 chips per op, so the recorder share of an op is within
		# run-to-run noise.)
		brecd = "BenchmarkBatchStepRecorded"
		if ((brecd in newv) && newa[brecd] != "" && newa[brecd] + 0 > 0) {
			printf "FAIL: %s allocates (%s allocs/op, want 0)\n", brecd, newa[brecd]
			status = 1
		}
		# Sweep allocation budget, measured inside the new recording:
		# absolute ceilings on the pooled sweep lanes. The 64-node fleet
		# lanes have their own ceilings below.
		header = 0
		for (i = 1; i <= cnt; i++) {
			name = order[i]
			if (name !~ /^Benchmark(Sweep|DatacenterSweep|BatchSweep)/) continue
			if (name ~ /Parallel64/) continue
			if (name ~ /(LongHorizon|Sampled)$/) continue
			if (name ~ /(WarmStart|SteadyExact)/) continue
			if (newa[name] == "" && newb[name] == "") continue
			if (!header) {
				print ""
				printf "sweep allocation budget (new recording): <=%d allocs/op, <=%d B/op\n", abudget, bbudget
				header = 1
			}
			printf "%-42s %10s allocs/op %12s B/op\n", name, newa[name], newb[name]
			if (newa[name] != "" && newa[name] + 0 > abudget + 0) {
				printf "FAIL: %s exceeds the sweep alloc budget (%s allocs/op > %d)\n", name, newa[name], abudget
				status = 1
			}
			if (newb[name] != "" && newb[name] + 0 > bbudget + 0) {
				printf "FAIL: %s exceeds the sweep bytes budget (%s B/op > %d)\n", name, newb[name], bbudget
				status = 1
			}
		}
		# Fleet allocation budget: the 64-node lanes, scalar and batched.
		header = 0
		for (i = 1; i <= cnt; i++) {
			name = order[i]
			if (name !~ /Parallel64/) continue
			if (newa[name] == "" && newb[name] == "") continue
			if (!header) {
				print ""
				printf "fleet allocation budget (new recording): <=%d allocs/op, <=%d B/op\n", fabudget, fbbudget
				header = 1
			}
			printf "%-42s %10s allocs/op %12s B/op\n", name, newa[name], newb[name]
			if (newa[name] != "" && newa[name] + 0 > fabudget + 0) {
				printf "FAIL: %s exceeds the fleet alloc budget (%s allocs/op > %d)\n", name, newa[name], fabudget
				status = 1
			}
			if (newb[name] != "" && newb[name] + 0 > fbbudget + 0) {
				printf "FAIL: %s exceeds the fleet bytes budget (%s B/op > %d)\n", name, newb[name], fbbudget
				status = 1
			}
		}
		# Fleet scaling: the sharded engine is supposed to hold per-node
		# advance cost near-flat in fleet size, so the 4096-node lane must
		# stay within the ceiling of the 256-node lane on the metric the
		# benchmarks report directly (ns/sim_s_node: wall-clock ns per
		# simulated second per node, invariant to epoch length and b.N).
		# Enforced at gomaxprocs >= 4; advisory below (see header).
		b256 = "BenchmarkFleetAdvance256"
		b4096 = "BenchmarkFleetAdvance4096"
		if (newnsn[b256] != "" && newnsn[b4096] != "" && newnsn[b256] + 0 > 0) {
			ratio = (newnsn[b4096] + 0) / (newnsn[b256] + 0)
			print ""
			printf "fleet scaling (new recording): 4096-node per-node cost %.2fx the 256-node cost (ceiling %.2fx%s)\n", \
				ratio, fsmax, (gmp >= 4 ? "" : ", advisory at gomaxprocs<4")
			if (gmp >= 4 && ratio > fsmax + 0) {
				printf "FAIL: %s per-node cost is %.2fx %s, above the %.2fx ceiling\n", b4096, ratio, b256, fsmax
				status = 1
			}
		}
		# At gomaxprocs 1 the shard and traffic fan-outs run serial and the
		# FleetAdvance lanes must be allocation-free in steady state: the
		# pooled arenas and pre-sized run queues leave nothing per epoch.
		# (Parallel fan-out allocates per-epoch goroutine scaffolding, so
		# the zero gate only applies to serial recordings.)
		if (gmp <= 1) {
			for (i = 1; i <= cnt; i++) {
				name = order[i]
				if (name !~ /^BenchmarkFleetAdvance/) continue
				if (newa[name] != "" && newa[name] + 0 > 0) {
					printf "FAIL: %s allocates (%s allocs/op, want 0 at gomaxprocs=1)\n", name, newa[name]
					status = 1
				}
			}
		}
		if (status) {
			print ""
			printf "FAIL: benchmark gate failed (see above)\n"
		}
		exit status
	}' "$old" "$new"
