#!/bin/sh
# bench.sh [pattern] [outfile] — run the microbenchmarks with -benchmem and
# record the raw lines plus environment as JSON for trend tracking.
#
# Defaults: the hot-path and sweep-engine benches, BENCH_<date>.json.
set -eu

pattern="${1:-BenchmarkChipStep|BenchmarkSweep}"
out="${2:-BENCH_$(date +%Y%m%d).json}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench "$pattern" -benchmem -benchtime 2000x . | tee "$tmp"

{
	printf '{\n'
	printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
	printf '  "go": "%s",\n' "$(go version | sed 's/"/\\"/g')"
	printf '  "cpus": %s,\n' "$(nproc 2>/dev/null || echo 0)"
	printf '  "pattern": "%s",\n' "$pattern"
	printf '  "results": [\n'
	grep '^Benchmark' "$tmp" | tr '\t' ' ' | tr -s ' ' | sed 's/"/\\"/g' | awk '
		{ lines[NR] = $0 }
		END {
			for (i = 1; i <= NR; i++) {
				comma = (i < NR) ? "," : ""
				printf "    \"%s\"%s\n", lines[i], comma
			}
		}'
	printf '  ]\n'
	printf '}\n'
} > "$out"

echo "wrote $out"
