#!/bin/sh
# bench.sh [pattern] [outfile] — run the microbenchmarks with -benchmem and
# record the raw lines plus environment as JSON for trend tracking.
#
# Defaults: the hot-path, sweep-engine and datacenter benches (including the
# -exact reference lanes of the multi-rate pairs and the batched sweep
# lanes), BENCH_<date>.json.
# BENCHTIME overrides the per-bench iteration budget (default 2000x; the
# experiment-scale benches amortize fine at far fewer, e.g. BENCHTIME=50x).
#
# The per-step micro benches (MICRO_BENCHES, default the ChipStep and
# BatchStep families) run in a separate pass at MICRO_BENCHTIME (default
# 100000x) with MICRO_COUNT repetitions (default 3): they cost
# microseconds per op, and 2000 iterations is far too noisy for the
# few-percent gates bench_compare.sh holds them to — the recorder-overhead
# budget in particular. The recorded line is the minimum-ns/op repetition:
# on a shared box, load spikes only ever push a measurement up, so the
# minimum is the best estimate of true cost and keeps the few-percent
# gates meaningful.
#
# The fleet benches (FLEET_BENCHES, default the 64-node datacenter pair)
# run in a third pass at FLEET_BENCHTIME (default 3x) with FLEET_COUNT
# repetitions (default 2, min wins as above): one op simulates a 64-node
# sweep and costs hundreds of milliseconds, so the main pass budget
# would take minutes per lane. The default main pattern excludes them by
# anchoring the DatacenterSweep alternatives; the fleet pass precedes the
# main pass, so a custom pattern that re-matches them keeps the fleet-pass
# run (first occurrence wins, as with the micro pass).
#
# The fleet-scale benches (FLEETSCALE_BENCHES, default the sharded
# BenchmarkFleetAdvance{256,1024,4096} ladder, its telemetry-plane twin
# BenchmarkFleetAdvance256Timeseries, plus BenchmarkWebsearchQoS)
# run in their own pass at FLEETSCALE_BENCHTIME (default 1x) with
# FLEETSCALE_COUNT repetitions (default 2, min wins): one op advances
# thousands of request-serving nodes, so even a handful of iterations
# costs seconds. The FleetAdvance lanes report ns/sim_s_node (wall-clock
# nanoseconds per simulated second per node), the figure
# bench_compare.sh's FLEET_SCALING_MAX gate holds near-flat from 256 to
# 4096 nodes.
#
# The sampled-lane benches (SAMPLED_BENCHES, default the two long-horizon
# macro/sampled pairs) run in a fourth pass at SAMPLED_BENCHTIME (default
# 1x) with SAMPLED_COUNT repetitions (default 3, min wins): one macro-lane
# op covers two minutes of simulated steady state per sweep point and
# costs seconds, and the sampled twins also run an untimed macro reference
# to report their sampled_err_rel headline-error metric.
# bench_compare.sh derives each pair's sampled-vs-macro speedup and gates
# it with SAMPLED_SPEEDUP_MIN / SAMPLED_ERR_MAX. The default main pattern
# anchors its Sweep alternative so these lanes never leak into the
# 2000x-budget pass.
#
# The warm-start benches (WARM_BENCHES, default the settle-dominated
# steady-state sweep pair plus the macro and full-suite warm lanes) run
# in their own pass at WARM_BENCHTIME (default 1x) with WARM_COUNT
# repetitions (default 3, min wins): each op re-runs the Fig13 borrowing
# sweep, and the warm lanes prime the snapshot cache untimed before the
# clock starts. The warm lanes report snap_bytes (the cache's resident
# image footprint); bench_compare.sh derives the cold/warm speedup and
# gates it with WARMSTART_SPEEDUP_MIN, and holds snap_bytes to
# SNAP_BYTES_BUDGET.
#
# Cluster-scale benchmark lines that report a sim_s/op metric (simulated
# seconds covered per op) gain a derived "ns/sim_s" field in the JSON:
# wall-clock nanoseconds per simulated second, the figure that stays
# comparable when a sweep's fleet size or grid changes while raw ns/op
# does not.
set -eu

pattern="${1:-BenchmarkChipStep|BenchmarkSweep(Serial|Parallel)|BenchmarkDatacenterSweep(Serial|SerialExact)?\$|BenchmarkDatacenterSweepParallel\$|BenchmarkBatchSweep}"
out="${2:-BENCH_$(date +%Y%m%d).json}"
benchtime="${BENCHTIME:-2000x}"
micro_pattern="${MICRO_BENCHES:-BenchmarkChipStep|BenchmarkBatchStep}"
micro_benchtime="${MICRO_BENCHTIME:-100000x}"
micro_count="${MICRO_COUNT:-3}"
fleet_pattern="${FLEET_BENCHES:-BenchmarkDatacenterSweepParallel64}"
fleet_benchtime="${FLEET_BENCHTIME:-3x}"
fleet_count="${FLEET_COUNT:-2}"
fleetscale_pattern="${FLEETSCALE_BENCHES:-BenchmarkFleetAdvance(256|1024|4096)\$|BenchmarkFleetAdvance256Timeseries\$|BenchmarkWebsearchQoS\$}"
fleetscale_benchtime="${FLEETSCALE_BENCHTIME:-1x}"
fleetscale_count="${FLEETSCALE_COUNT:-2}"
sampled_pattern="${SAMPLED_BENCHES:-Benchmark(DatacenterSweep|Sweep)(LongHorizon|Sampled)\$}"
sampled_benchtime="${SAMPLED_BENCHTIME:-1x}"
sampled_count="${SAMPLED_COUNT:-3}"
warm_pattern="${WARM_BENCHES:-BenchmarkSweep(SteadyExact|WarmStart(Exact|FullSuite)?)\$}"
warm_benchtime="${WARM_BENCHTIME:-1x}"
warm_count="${WARM_COUNT:-3}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench "$micro_pattern" -benchmem -benchtime "$micro_benchtime" -count "$micro_count" . | tee "$tmp"
go test -run '^$' -bench "$fleet_pattern" -benchmem -benchtime "$fleet_benchtime" -count "$fleet_count" . | tee -a "$tmp"
go test -run '^$' -bench "$fleetscale_pattern" -benchmem -benchtime "$fleetscale_benchtime" -count "$fleetscale_count" . | tee -a "$tmp"
go test -run '^$' -bench "$sampled_pattern" -benchmem -benchtime "$sampled_benchtime" -count "$sampled_count" . | tee -a "$tmp"
go test -run '^$' -bench "$warm_pattern" -benchmem -benchtime "$warm_benchtime" -count "$warm_count" . | tee -a "$tmp"
go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" . | tee -a "$tmp"

# The worker parallelism the benchmarks actually ran at: Go stamps
# GOMAXPROCS as the -N suffix of every benchmark name (omitted when it is
# 1), so read it from the output rather than guessing from the environment.
gomaxprocs="$(grep -m1 '^Benchmark' "$tmp" | sed -n 's/^Benchmark[^ 	]*-\([0-9][0-9]*\)[ 	].*/\1/p')"
if [ -z "$gomaxprocs" ]; then
	if grep -q '^Benchmark' "$tmp"; then gomaxprocs=1; else gomaxprocs=0; fi
fi

{
	printf '{\n'
	printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
	printf '  "go": "%s",\n' "$(go version | sed 's/"/\\"/g')"
	printf '  "cpus": %s,\n' "$(nproc 2>/dev/null || echo 0)"
	printf '  "gomaxprocs": %s,\n' "$gomaxprocs"
	printf '  "pattern": "%s",\n' "$pattern"
	printf '  "benchtime": "%s",\n' "$benchtime"
	printf '  "micro_benchtime": "%s",\n' "$micro_benchtime"
	printf '  "fleet_benchtime": "%s",\n' "$fleet_benchtime"
	printf '  "results": [\n'
	grep '^Benchmark' "$tmp" | tr '\t' ' ' | tr -s ' ' | sed 's/"/\\"/g' | awk '
		{
			# Minimum ns/op wins across repetitions and passes (load
			# spikes only inflate a run, never deflate it); output keeps
			# first-seen order, so the micro and fleet passes preceding
			# the main pass also decide ordering for overlapping names.
			split($0, f, " ")
			name = f[1]
			ns = ""; sims = ""
			for (i = 2; i < NF; i++) {
				if (f[i+1] == "ns/op") ns = f[i]
				if (f[i+1] == "sim_s/op") sims = f[i]
			}
			line = $0
			if (ns != "" && sims != "" && sims + 0 > 0)
				line = line sprintf(" %.0f ns/sim_s", ns / sims)
			if (!(name in best)) {
				order[++n] = name
				best[name] = line
				bestns[name] = ns
			} else if (ns != "" && ns + 0 < bestns[name] + 0) {
				best[name] = line
				bestns[name] = ns
			}
		}
		END {
			for (i = 1; i <= n; i++) {
				comma = (i < n) ? "," : ""
				printf "    \"%s\"%s\n", best[order[i]], comma
			}
		}'
	printf '  ]\n'
	printf '}\n'
} > "$out"

echo "wrote $out"
