#!/bin/sh
# bench.sh [pattern] [outfile] — run the microbenchmarks with -benchmem and
# record the raw lines plus environment as JSON for trend tracking.
#
# Defaults: the hot-path, sweep-engine and datacenter benches (including the
# -exact reference lanes of the multi-rate pairs), BENCH_<date>.json.
# BENCHTIME overrides the per-bench iteration budget (default 2000x; the
# experiment-scale benches amortize fine at far fewer, e.g. BENCHTIME=50x).
set -eu

pattern="${1:-BenchmarkChipStep|BenchmarkSweep|BenchmarkDatacenterSweep}"
out="${2:-BENCH_$(date +%Y%m%d).json}"
benchtime="${BENCHTIME:-2000x}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" . | tee "$tmp"

{
	printf '{\n'
	printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
	printf '  "go": "%s",\n' "$(go version | sed 's/"/\\"/g')"
	printf '  "cpus": %s,\n' "$(nproc 2>/dev/null || echo 0)"
	printf '  "pattern": "%s",\n' "$pattern"
	printf '  "benchtime": "%s",\n' "$benchtime"
	printf '  "results": [\n'
	grep '^Benchmark' "$tmp" | tr '\t' ' ' | tr -s ' ' | sed 's/"/\\"/g' | awk '
		{ lines[NR] = $0 }
		END {
			for (i = 1; i <= NR; i++) {
				comma = (i < NR) ? "," : ""
				printf "    \"%s\"%s\n", lines[i], comma
			}
		}'
	printf '  ]\n'
	printf '}\n'
} > "$out"

echo "wrote $out"
