#!/bin/sh
# bench.sh [pattern] [outfile] — run the microbenchmarks with -benchmem and
# record the raw lines plus environment as JSON for trend tracking.
#
# Defaults: the hot-path, sweep-engine and datacenter benches (including the
# -exact reference lanes of the multi-rate pairs), BENCH_<date>.json.
# BENCHTIME overrides the per-bench iteration budget (default 2000x; the
# experiment-scale benches amortize fine at far fewer, e.g. BENCHTIME=50x).
#
# The per-step micro benches (MICRO_BENCHES, default the ChipStep family)
# run in a separate pass at MICRO_BENCHTIME (default 100000x): they cost
# microseconds per op, and 2000 iterations is far too noisy for the few-
# percent gates bench_compare.sh holds them to — the recorder-overhead
# budget in particular. When a name matches both passes the micro pass
# wins.
set -eu

pattern="${1:-BenchmarkChipStep|BenchmarkSweep|BenchmarkDatacenterSweep}"
out="${2:-BENCH_$(date +%Y%m%d).json}"
benchtime="${BENCHTIME:-2000x}"
micro_pattern="${MICRO_BENCHES:-BenchmarkChipStep}"
micro_benchtime="${MICRO_BENCHTIME:-100000x}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench "$micro_pattern" -benchmem -benchtime "$micro_benchtime" . | tee "$tmp"
go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" . | tee -a "$tmp"

# The worker parallelism the benchmarks actually ran at: Go stamps
# GOMAXPROCS as the -N suffix of every benchmark name (omitted when it is
# 1), so read it from the output rather than guessing from the environment.
gomaxprocs="$(grep -m1 '^Benchmark' "$tmp" | sed -n 's/^Benchmark[^ 	]*-\([0-9][0-9]*\)[ 	].*/\1/p')"
if [ -z "$gomaxprocs" ]; then
	if grep -q '^Benchmark' "$tmp"; then gomaxprocs=1; else gomaxprocs=0; fi
fi

{
	printf '{\n'
	printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
	printf '  "go": "%s",\n' "$(go version | sed 's/"/\\"/g')"
	printf '  "cpus": %s,\n' "$(nproc 2>/dev/null || echo 0)"
	printf '  "gomaxprocs": %s,\n' "$gomaxprocs"
	printf '  "pattern": "%s",\n' "$pattern"
	printf '  "benchtime": "%s",\n' "$benchtime"
	printf '  "micro_benchtime": "%s",\n' "$micro_benchtime"
	printf '  "results": [\n'
	grep '^Benchmark' "$tmp" | tr '\t' ' ' | tr -s ' ' | sed 's/"/\\"/g' | awk '
		{
			# First occurrence wins: the micro pass precedes the main
			# pass, so overlapping names keep their high-iteration run.
			split($0, f, " ")
			if (f[1] in seen) next
			seen[f[1]] = 1
			lines[++n] = $0
		}
		END {
			for (i = 1; i <= n; i++) {
				comma = (i < n) ? "," : ""
				printf "    \"%s\"%s\n", lines[i], comma
			}
		}'
	printf '  ]\n'
	printf '}\n'
} > "$out"

echo "wrote $out"
