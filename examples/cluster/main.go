// Cluster scheduling: the paper's §5.1.1 two-level policy — consolidate
// jobs onto as few servers as possible (whole suspended servers save their
// platform power), then spread threads across each powered server's sockets
// with loadline borrowing.
//
//	go run ./examples/cluster
package main

import (
	"fmt"

	"agsim/internal/cluster"
	"agsim/internal/workload"
)

func main() {
	c := cluster.MustNew(4, cluster.DefaultNodeConfig(99))

	jobs := []struct {
		id      string
		bench   string
		threads int
	}{
		{"web-frontend", "websearch", 4},
		{"analytics", "radix", 8},
		{"render", "raytrace", 4},
		{"solver", "lu_ncb", 6}, // sharing-heavy: stays on one socket
	}
	for _, j := range jobs {
		node, err := c.Submit(j.id, workload.MustGet(j.bench), j.threads, 1e6)
		if err != nil {
			panic(err)
		}
		fmt.Printf("submitted %-13s (%d threads of %-10s) -> node %d\n",
			j.id, j.threads, j.bench, node)
	}

	c.Settle(3)
	fmt.Printf("\npowered nodes: %d of %d; cluster power %.1f W\n",
		c.PoweredNodes(), c.Nodes(), float64(c.TotalPower()))
	for i := 0; i < c.Nodes(); i++ {
		n := c.Node(i)
		if srv := n.Server(); srv != nil {
			fmt.Printf("node %d: sockets at %d/%d active cores, %5.1f W + platform\n",
				i, srv.Chip(0).ActiveCores(), srv.Chip(1).ActiveCores(),
				float64(srv.TotalPower()))
		} else {
			fmt.Printf("node %d: suspended\n", i)
		}
	}

	// Release the analytics job; its node stays up only if other jobs
	// share it, otherwise it suspends and the cluster draw falls by the
	// whole platform overhead.
	before := float64(c.TotalPower())
	if err := c.Release("analytics"); err != nil {
		panic(err)
	}
	c.Settle(1)
	fmt.Printf("\nafter releasing analytics: powered nodes %d, power %.1f W (was %.1f)\n",
		c.PoweredNodes(), float64(c.TotalPower()), before)
}
