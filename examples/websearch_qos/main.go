// WebSearch QoS: the end-to-end Fig. 18 loop. WebSearch serves queries on
// core 0 while a co-runner occupies the other seven cores; the adaptive
// mapper watches windowed p90 latency and swaps the co-runner when the SLA
// starts failing.
//
//	go run ./examples/websearch_qos
package main

import (
	"fmt"

	"agsim/internal/chip"
	"agsim/internal/core"
	"agsim/internal/firmware"
	"agsim/internal/qos"
	"agsim/internal/rng"
	"agsim/internal/units"
	"agsim/internal/workload"
)

type coRunner struct {
	name     string
	throttle float64
}

var coRunners = []coRunner{{"light", 0.18}, {"medium", 0.39}, {"heavy", 0.96}}

func place(c *chip.Chip, r coRunner) {
	cm := workload.MustGet("coremark")
	for i := 1; i < 8; i++ {
		c.ClearCore(i)
		c.Place(i, workload.NewThread(cm, 1e9, nil))
		c.SetIssueThrottle(i, r.throttle)
	}
}

func main() {
	cfg := qos.DefaultConfig()
	c := chip.MustNew(chip.DefaultConfig("P0", 3))
	c.Place(0, workload.NewThread(workload.MustGet("websearch"), 1e9, nil))
	place(c, coRunners[2]) // start blindly colocated with "heavy"
	c.SetMode(firmware.Overclock)
	c.Settle(2.5)

	// Train the frequency predictor from a few profiled throttle levels.
	predictor := &core.FreqPredictor{}
	for _, th := range []float64{0.1, 0.4, 0.7, 0.96} {
		probe := chip.MustNew(chip.DefaultConfig("train", 3))
		probe.Place(0, workload.NewThread(workload.MustGet("websearch"), 1e9, nil))
		place(probe, coRunner{"t", th})
		probe.SetMode(firmware.Overclock)
		probe.Settle(2.5)
		var mips, freq float64
		for i := 0; i < 300; i++ {
			probe.Step(chip.DefaultStepSec)
			mips += float64(probe.TotalMIPS())
			freq += float64(probe.CoreFreq(0))
		}
		predictor.Observe(units.MIPS(mips/300), units.Megahertz(freq/300))
	}
	if err := predictor.Train(); err != nil {
		panic(err)
	}

	mapper, err := core.NewAdaptiveMapper(core.AppSpec{
		Name: "websearch", Critical: true, QoSTarget: cfg.TargetP90Sec,
	}, predictor)
	if err != nil {
		panic(err)
	}
	mapper.WindowQuanta = 10

	// Candidate co-runners with their profiled MIPS contributions.
	candidates := []core.Candidate{
		{Name: "light", MIPS: 13000, BandwidthGBs: 0.3},
		{Name: "medium", MIPS: 28000, BandwidthGBs: 0.6},
		{Name: "heavy", MIPS: 70000, BandwidthGBs: 1.5},
	}

	tracker := qos.NewTracker(cfg, rng.New(3, "qos"))
	current := "heavy"
	fmt.Printf("SLA: window p90 <= %.1f s; starting co-runner: %s\n\n", cfg.TargetP90Sec, current)
	for w := 0; w < 60; w++ {
		// One measurement window of live simulation.
		steps := int(cfg.WindowSec / chip.DefaultStepSec)
		var own, freq float64
		for i := 0; i < steps; i++ {
			c.Step(chip.DefaultStepSec)
			own += float64(c.CoreMIPS(0))
			freq += float64(c.CoreFreq(0))
		}
		own /= float64(steps)
		freq /= float64(steps)

		res := tracker.RunWindow(units.MIPS(own))
		mark := " "
		if res.Violated {
			mark = "!"
		}
		if w%5 == 0 || res.Violated {
			fmt.Printf("window %2d [%s]: p90 %.3f s at %4.0f MHz (co-runner %s, violation rate %.0f%%)\n",
				w, mark, res.P90Sec, freq, current, mapper.ViolationRate()*100)
		}

		d := mapper.Tick(core.Observation{
			QoSMetric: res.P90Sec,
			Violated:  res.Violated,
			Freq:      units.Megahertz(freq),
			OwnMIPS:   units.MIPS(own),
		}, candidates)
		if d.Swap && d.Candidate.Name != current {
			fmt.Printf("\n>>> mapper: %s — swapping %s out for %s\n\n", d.Reason, current, d.Candidate.Name)
			for _, cr := range coRunners {
				if cr.name == d.Candidate.Name {
					place(c, cr)
					current = cr.name
				}
			}
			tracker.ResetStats()
		}
	}
	fmt.Printf("\nfinal co-runner: %s, violation rate since swap: %.0f%%\n",
		current, tracker.ViolationRate()*100)
}
