// WebSearch QoS: the fleet-scale serving study, run through the registered
// `websearch-qos` experiment driver — the same code path `agsim -run
// websearch-qos` and the accuracy harness execute, so this example cannot
// drift from the registered experiment.
//
//	go run ./examples/websearch_qos [-quick] [-nodes N] [-workers N] [-batched]
package main

import (
	"flag"
	"fmt"
	"os"

	"agsim/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "reduced-fidelity sweep (fewer loads, shorter spans)")
	nodes := flag.Int("nodes", 0, "fleet size (0 selects the default)")
	workers := flag.Int("workers", 0, "worker pool width (0 selects GOMAXPROCS)")
	batched := flag.Bool("batched", false, "ride the structure-of-arrays stepping engine")
	full := flag.Bool("full", false, "print figures and tables, not just headlines")
	flag.Parse()

	exp, ok := experiments.Lookup("websearch-qos")
	if !ok {
		fmt.Fprintln(os.Stderr, "websearch-qos is not registered")
		os.Exit(1)
	}

	o := experiments.DefaultOptions()
	if *quick {
		o = experiments.QuickOptions()
	}
	o.Nodes = *nodes
	o.Workers = *workers
	o.Batched = *batched

	fmt.Printf("%s — %s\n", exp.ID, exp.Title)
	fmt.Printf("paper: %s\n\n", exp.Paper)
	rep := exp.Run(o)
	if err := rep.Write(os.Stdout, *full); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
