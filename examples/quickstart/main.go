// Quickstart: build one simulated POWER7+ chip, run a workload under the
// three guardband policies, and see what adaptive guardbanding buys.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"agsim/internal/chip"
	"agsim/internal/firmware"
	"agsim/internal/workload"
)

func main() {
	bench := workload.MustGet("raytrace")
	fmt.Printf("workload: %s (%s), IPC %.1f, %d%% memory-bound\n\n",
		bench.Name, bench.Suite, bench.IPC, int(bench.MemBoundFraction(4200)*100))

	fmt.Println("mode        cores   power     freq      undervolt")
	for _, mode := range []firmware.Mode{firmware.Static, firmware.Undervolt, firmware.Overclock} {
		for _, n := range []int{1, 8} {
			// A fresh chip per configuration: process variation is seeded,
			// so results are reproducible.
			c := chip.MustNew(chip.DefaultConfig("P0", 42))
			for i := 0; i < n; i++ {
				c.Place(i, workload.NewThread(bench, 1e9, nil))
			}
			c.SetMode(mode)

			// Let the electrical and firmware loops converge, then average
			// the sensors over one second.
			c.Settle(2.5)
			var power, freq, uv float64
			const steps = 1000
			for i := 0; i < steps; i++ {
				c.Step(chip.DefaultStepSec)
				power += float64(c.ChipPower())
				freq += float64(c.CoreFreq(0))
				uv += float64(c.UndervoltMV())
			}
			fmt.Printf("%-11s %5d   %6.1f W  %5.0f MHz  %5.1f mV\n",
				mode, n, power/steps, freq/steps, uv/steps)
		}
	}

	fmt.Println("\nThe paper's core finding, visible above: undervolting saves ~13% at")
	fmt.Println("one active core but only ~3% at eight, because the VRM loadline and")
	fmt.Println("the chip's IR drop eat the guardband as current grows.")
}
