// AGS orchestrator: the composed scheduler end to end. One critical
// WebSearch instance and a stream of batch jobs share a two-socket server;
// the orchestrator places batch work under loadline borrowing, rebalances
// at runtime, and watches the critical app's windowed tail latency with the
// Fig. 18 loop. Every decision lands in the event log.
//
//	go run ./examples/ags_orchestrator
package main

import (
	"fmt"

	"agsim/internal/chip"
	"agsim/internal/core"
	"agsim/internal/firmware"
	"agsim/internal/qos"
	"agsim/internal/server"
	"agsim/internal/units"
	"agsim/internal/workload"
)

// trainPredictor profiles the platform across load levels — the one-time
// setup a datacenter operator amortizes across the fleet.
func trainPredictor() *core.FreqPredictor {
	p := &core.FreqPredictor{}
	for _, n := range []int{1, 3, 5, 8} {
		for _, bench := range []string{"mcf", "dealII", "lu_cb"} {
			c := chip.MustNew(chip.DefaultConfig("profile", 9))
			d := workload.MustGet(bench)
			for i := 0; i < n; i++ {
				c.Place(i, workload.NewThread(d, 1e9, nil))
			}
			c.SetMode(firmware.Overclock)
			c.Settle(2)
			var mips, freq float64
			for i := 0; i < 300; i++ {
				c.Step(chip.DefaultStepSec)
				mips += float64(c.TotalMIPS())
				freq += float64(c.CoreFreq(0))
			}
			p.Observe(units.MIPS(mips/300), units.Megahertz(freq/300))
		}
	}
	if err := p.Train(); err != nil {
		panic(err)
	}
	return p
}

func main() {
	srv := server.MustNew(server.DefaultConfig(2026))
	srv.SetMode(firmware.Undervolt)

	predictor := trainPredictor()
	rel, _ := predictor.RelRMSE()
	fmt.Printf("frequency predictor trained: relative RMSE %.2f%%\n\n", rel*100)

	ags, err := core.NewAGS(srv, core.AGSConfig{OnCoresTotal: 16, Predictor: predictor, Seed: 2026})
	if err != nil {
		panic(err)
	}

	qcfg := qos.DefaultConfig()
	if _, err := ags.SubmitCritical("websearch", workload.MustGet("websearch"), core.AppSpec{
		Name: "websearch", Critical: true, QoSTarget: qcfg.TargetP90Sec,
	}, qcfg, 2026); err != nil {
		panic(err)
	}
	for i, batch := range []struct {
		bench   string
		threads int
	}{
		{"dealII", 4}, {"lu_cb", 6}, {"radiosity", 5},
	} {
		if _, err := ags.SubmitBatch(fmt.Sprintf("batch-%d", i), workload.MustGet(batch.bench), batch.threads, 1e9); err != nil {
			panic(err)
		}
	}

	// Run four simulated minutes; print QoS reports as they land. (The
	// mapper needs a full evidence window before it acts.)
	srv.Settle(2)
	for i := 0; i < 260000; i++ {
		for _, rep := range ags.Step(chip.DefaultStepSec) {
			status := "ok"
			if rep.Violated {
				status = "VIOLATED"
			}
			fmt.Printf("qos %-10s p90 %.3fs (%s, rate %.0f%%)\n",
				rep.ID, rep.P90Sec, status, rep.ViolationRate*100)
			if rep.Alert != "" {
				fmt.Printf("  -> scheduler advice: %s\n", rep.Alert)
			}
		}
	}

	fmt.Printf("\nscheduler event log (%d events total):\n%s", ags.Events().Total(), ags.Events().Dump())
	fmt.Printf("socket load: %d / %d active cores; migrations: %d\n",
		srv.Chip(0).ActiveCores(), srv.Chip(1).ActiveCores(), ags.Rebalancer().Migrations())
}
