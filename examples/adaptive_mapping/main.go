// Adaptive mapping: profile the chip, train the paper's MIPS-based
// frequency predictor (Fig. 16), and use it to vet co-runner placements for
// a frequency-sensitive critical application before they ever run.
//
//	go run ./examples/adaptive_mapping
package main

import (
	"fmt"

	"agsim/internal/chip"
	"agsim/internal/core"
	"agsim/internal/firmware"
	"agsim/internal/units"
	"agsim/internal/workload"
)

// profile measures the settled boost frequency and chip MIPS with n copies
// of each named workload.
func profile(names ...string) (units.MIPS, units.Megahertz) {
	c := chip.MustNew(chip.DefaultConfig("P0", 5))
	for i, name := range names {
		c.Place(i, workload.NewThread(workload.MustGet(name), 1e9, nil))
	}
	c.SetMode(firmware.Overclock)
	c.Settle(2.5)
	var mips, freq float64
	const steps = 500
	for i := 0; i < steps; i++ {
		c.Step(chip.DefaultStepSec)
		mips += float64(c.TotalMIPS())
		freq += float64(c.CoreFreq(0))
	}
	return units.MIPS(mips / steps), units.Megahertz(freq / steps)
}

func fill(name string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = name
	}
	return out
}

func main() {
	// 1. Train the predictor from a handful of profiled chip loads — the
	// profiling a datacenter middleware accumulates for free.
	predictor := &core.FreqPredictor{}
	fmt.Println("training points (chip MIPS -> settled frequency):")
	for _, tc := range [][]string{
		fill("mcf", 8), fill("ocean_cp", 8), fill("sphinx3", 8),
		fill("dealII", 8), fill("hmmer", 8), fill("coremark", 8), fill("lu_cb", 8),
	} {
		mips, freq := profile(tc...)
		predictor.Observe(mips, freq)
		fmt.Printf("  %-10s %8.0f MIPS -> %4.0f MHz\n", tc[0], float64(mips), float64(freq))
	}
	if err := predictor.Train(); err != nil {
		panic(err)
	}
	rel, _ := predictor.RelRMSE()
	fmt.Printf("model: f = %.0f %+.4f*MIPS  (relative RMSE %.2f%%)\n\n",
		predictor.Fit().Intercept, predictor.Fit().Slope, rel*100)

	// 2. Vet hypothetical colocations for a critical app that needs
	// 4450 MHz to hold its SLA.
	const needMHz = 4450
	critical, _ := profile("websearch")
	fmt.Printf("critical app alone: %.0f MIPS; SLA needs %d MHz\n", float64(critical), needMHz)
	for _, cand := range []string{"mcf", "radix", "sphinx3", "hmmer", "lu_cb", "coremark"} {
		// The co-runner would fill the remaining seven cores.
		d := workload.MustGet(cand)
		coMIPS := units.MIPS(7 * float64(d.MIPSPerThread(4400, 1, 1)))
		predicted, err := predictor.Predict(critical + coMIPS)
		if err != nil {
			panic(err)
		}
		verdict := "OK"
		if float64(predicted) < needMHz {
			verdict = "REJECT (malicious colocation)"
		}
		fmt.Printf("  with 7x %-10s predicted %4.0f MHz  %s\n", cand, float64(predicted), verdict)
	}

	// 3. Verify the prediction for one accepted and one rejected mix.
	for _, cand := range []string{"mcf", "lu_cb"} {
		names := append([]string{"websearch"}, fill(cand, 7)...)
		_, actual := profile(names...)
		fmt.Printf("measured with 7x %-10s %4.0f MHz\n", cand, float64(actual))
	}
}
