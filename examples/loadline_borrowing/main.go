// Loadline borrowing: compare the conventional consolidation schedule with
// the paper's loadline-borrowing schedule on the two-socket server, for a
// compute-heavy and a bandwidth-heavy workload.
//
//	go run ./examples/loadline_borrowing
package main

import (
	"fmt"

	"agsim/internal/core"
	"agsim/internal/firmware"
	"agsim/internal/server"
	"agsim/internal/workload"
)

// run executes the whole benchmark under one schedule and returns average
// power and total energy.
func run(d workload.Descriptor, borrowed bool) (powerW, energyJ, seconds float64) {
	s := server.MustNew(server.DefaultConfig(11))
	const threads = 8
	if borrowed {
		sched, err := core.NewBorrowing(s.Sockets(), 8, 8)
		if err != nil {
			panic(err)
		}
		if _, err := sched.Apply(s, "job", d, threads, d.WorkGInst*0.2); err != nil {
			panic(err)
		}
	} else {
		s.MustSubmit("job", d, server.ConsolidatedPlacements(threads), d.WorkGInst*0.2)
		s.GateUnloadedCores(0, 0)
	}
	s.SetMode(firmware.Undervolt)
	s.ResetEnergy()
	elapsed, done := s.RunUntilDone(600)
	if !done {
		panic("benchmark did not finish")
	}
	return s.TotalEnergyJ() / elapsed, s.TotalEnergyJ(), elapsed
}

func main() {
	for _, name := range []string{"raytrace", "radix", "lu_ncb"} {
		d := workload.MustGet(name)
		pc, ec, tc := run(d, false)
		pb, eb, tb := run(d, true)
		fmt.Printf("%s:\n", name)
		fmt.Printf("  consolidated:  %6.1f W, %7.0f J, %5.1f s\n", pc, ec, tc)
		fmt.Printf("  borrowed:      %6.1f W, %7.0f J, %5.1f s\n", pb, eb, tb)
		fmt.Printf("  power %+.1f%%, energy %+.1f%%, AGS policy says borrow: %v\n\n",
			(pc-pb)/pc*100, (ec-eb)/eb*100, core.ShouldBorrow(d))
	}
	fmt.Println("raytrace shows the loadline mechanism (deeper undervolt on both")
	fmt.Println("sockets); radix additionally gains from relieved memory-bandwidth")
	fmt.Println("contention; lu_ncb regresses because its threads share data across")
	fmt.Println("the sockets — exactly the Fig. 14 spectrum, which is why the AGS")
	fmt.Println("policy keeps sharing-heavy jobs consolidated.")
}
